//! Post-sensing delay sub-phases (paper Section 2.3, Equations 9–11).
//!
//! The latch-based voltage sense amplifier resolves the bitline swing in
//! four sub-phases; the first three are modeled here:
//!
//! * `t1` — output nodes discharge at the input pair's saturation current
//!   until one drops by `Vtp` and a PMOS turns on (Equation 9),
//! * `t2` — regenerative amplification with effective transconductance
//!   `gme` (Equation 10),
//! * `t3` — the outputs are driven to the rails (Equation 11).
//!
//! Phase 4 (charge restoration into the cell) lives in [`crate::restore`].

use crate::tech::{BankGeometry, Technology};

/// Sense-amplifier delay model.
#[derive(Debug, Clone, PartialEq)]
pub struct SenseAmpModel {
    vdd: f64,
    veq: f64,
    vth_n: f64,
    vth_p: f64,
    beta_n: f64,
    cbl: f64,
    r_post: f64,
    v_residue: f64,
    gme: f64,
}

impl SenseAmpModel {
    /// Builds the model for a technology and geometry.
    pub fn new(tech: &Technology, geometry: BankGeometry) -> Self {
        let veq = tech.veq();
        // Effective transconductance of the cross-coupled inverter pair at
        // the metastable point: both devices biased near Veq.
        let gme = (tech.beta_sa_n + tech.beta_sa_p) * (veq - tech.vth_n).max(0.05);
        // R_post = Rbl + r_on of the (strongly-driven) latch device.
        let ron_latch = 1.0 / (tech.beta_sa_n * (tech.vdd - tech.vth_n));
        SenseAmpModel {
            vdd: tech.vdd,
            veq,
            vth_n: tech.vth_n,
            vth_p: tech.vth_p,
            beta_n: tech.beta_sa_n,
            cbl: tech.cbl(geometry),
            r_post: tech.rbl(geometry) + ron_latch,
            v_residue: tech.v_residue,
            gme,
        }
    }

    /// The input pair's saturation current `Idsat10` (Equation 9's
    /// long-channel expression).
    pub fn idsat10(&self) -> f64 {
        let vov = self.veq - self.vth_n;
        let ratio = 1.0 + (self.vdd - self.vth_n) / vov;
        let factor = 1.0 - 0.75 / ratio;
        self.beta_n * vov * vov * factor * factor
    }

    /// Phase-1 delay `t1 = Cbl·Vtp / Idsat10` (Equation 9), seconds.
    pub fn t1(&self) -> f64 {
        self.cbl * self.vth_p / self.idsat10()
    }

    /// Phase-2 (regeneration) delay (Equation 10), seconds, for an initial
    /// differential input `delta_vbl` volts.
    ///
    /// Smaller input swings take exponentially longer to regenerate.
    ///
    /// # Panics
    ///
    /// Panics if `delta_vbl` is not positive.
    pub fn t2(&self, delta_vbl: f64) -> f64 {
        assert!(delta_vbl > 0.0, "sense input must be positive");
        let arg = 2.0 * (self.idsat10() / self.beta_n).sqrt() * (self.vdd - self.vth_p - self.veq)
            / (self.vth_p * delta_vbl);
        // For very large inputs the latch is already resolved; clamp at 0.
        (self.cbl / self.gme) * arg.ln().max(0.0)
    }

    /// Phase-3 (rail drive) delay `t3 ≈ Rpost·Cbl·ln(Veq/Vresidue)`
    /// (Equation 11), seconds.
    pub fn t3(&self) -> f64 {
        self.r_post * self.cbl * (self.veq / self.v_residue).ln()
    }

    /// Total sensing delay `t1 + t2 + t3` for an input swing `delta_vbl`.
    pub fn sensing_delay(&self, delta_vbl: f64) -> f64 {
        self.t1() + self.t2(delta_vbl) + self.t3()
    }

    /// The post-sensing drive resistance `R_post` (Ω).
    pub fn r_post(&self) -> f64 {
        self.r_post
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SenseAmpModel {
        SenseAmpModel::new(&Technology::n90(), BankGeometry::operational_segment())
    }

    #[test]
    fn delays_are_positive() {
        let m = model();
        assert!(m.t1() > 0.0);
        assert!(m.t2(0.1) > 0.0);
        assert!(m.t3() > 0.0);
    }

    #[test]
    fn smaller_swing_senses_slower() {
        let m = model();
        assert!(m.t2(0.02) > m.t2(0.1));
    }

    #[test]
    fn t2_clamps_for_huge_inputs() {
        let m = model();
        assert_eq!(m.t2(1e3), 0.0);
    }

    #[test]
    fn sensing_delay_is_sum_of_phases() {
        let m = model();
        let d = 0.08;
        assert!((m.sensing_delay(d) - (m.t1() + m.t2(d) + m.t3())).abs() < 1e-18);
    }

    #[test]
    fn bigger_bitline_senses_slower() {
        let t = Technology::n90();
        let small = SenseAmpModel::new(&t, BankGeometry::new(2048, 32));
        let large = SenseAmpModel::new(&t, BankGeometry::new(16384, 32));
        assert!(large.sensing_delay(0.1) > small.sensing_delay(0.1));
    }

    #[test]
    fn sensing_is_nanosecond_scale() {
        // Sanity: total sensing for a healthy swing should be O(ns), not
        // ps or µs, so the cycle budgets of Section 3.1 make sense.
        let m = model();
        let d = m.sensing_delay(0.1);
        assert!(d > 0.05e-9 && d < 20e-9, "sensing delay {d}");
    }

    #[test]
    #[should_panic(expected = "sense input must be positive")]
    fn zero_swing_panics() {
        let _ = model().t2(0.0);
    }
}
