//! The single-cell capacitor model of Li et al. \[26\] — the accuracy
//! baseline of Figure 5 and Table 1.
//!
//! This model treats the bitline as one lumped capacitor of fixed,
//! datasheet-nominal value, and the equalizer/access devices as simple ON
//! resistances. It ignores:
//!
//! * the saturation phase of the equalizer (it starts exponential at
//!   `t = 0`),
//! * the geometry scaling of the bitline (`Cbl`, `Rbl` fixed at the
//!   nominal 512-cell segment),
//! * all parasitic coupling (`Cbb`, `Cbw`) and the wordline rise time.
//!
//! As a result it predicts the *same* pre-sensing delay for every bank
//! size — the behaviour Table 1 reports (a constant 6 cycles).

use crate::tech::Technology;

/// Nominal cells-per-bitline of the datasheet segment the single-cell
/// model assumes.
pub const NOMINAL_SEGMENT_CELLS: usize = 512;

/// The Li et al. single-cell capacitor model.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleCellModel {
    vdd: f64,
    veq: f64,
    cs: f64,
    cbl0: f64,
    req: f64,
    r_pre: f64,
}

impl SingleCellModel {
    /// Builds the baseline model from a technology (geometry-independent
    /// by construction).
    pub fn new(tech: &Technology) -> Self {
        let cbl0 = tech.cbl_fixed + tech.cbl_per_cell * NOMINAL_SEGMENT_CELLS as f64;
        let rbl0 = tech.rbl_fixed + tech.rbl_per_cell * NOMINAL_SEGMENT_CELLS as f64;
        SingleCellModel {
            vdd: tech.vdd,
            veq: tech.veq(),
            cs: tech.cs,
            cbl0,
            req: rbl0 + tech.ron_eq(),
            r_pre: rbl0 + tech.ron_access(tech.veq()),
        }
    }

    /// The nominal bitline capacitance the model assumes (F).
    pub fn cbl_nominal(&self) -> f64 {
        self.cbl0
    }

    /// Equalization: single exponential from `t = 0` (no saturation
    /// phase). `v0` is the bitline's initial voltage.
    pub fn equalization_voltage(&self, v0: f64, t: f64) -> f64 {
        if t <= 0.0 {
            return v0;
        }
        self.veq + (v0 - self.veq) * (-t / (self.req * self.cbl0)).exp()
    }

    /// Pre-sensing settling function: a single-pole RC with
    /// `τ = Rpre·(Cs‖Cbl)` — no distributed-line mode, no wordline rise,
    /// no geometry dependence.
    pub fn u(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 1.0;
        }
        let ceff = self.cs * self.cbl0 / (self.cs + self.cbl0);
        (-t / (self.r_pre * ceff)).exp()
    }

    /// Time to reach `fraction` of the final bitline swing (bisection on
    /// the monotone `u`).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1)`.
    pub fn settling_time(&self, fraction: f64) -> f64 {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "fraction must be in (0,1)"
        );
        let target = 1.0 - fraction;
        let mut hi = self.r_pre * (self.cs + self.cbl0);
        while self.u(hi) > target {
            hi *= 2.0;
        }
        let mut lo = 0.0;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.u(mid) > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Pre-sensing delay in array-clock cycles (Table 1's single-cell
    /// column) — identical for every geometry by construction.
    pub fn presensing_cycles(&self, tech: &Technology) -> usize {
        (self.settling_time(0.95) / tech.tck_presense).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charge_sharing::ChargeSharingModel;
    use crate::tech::BankGeometry;

    fn model() -> SingleCellModel {
        SingleCellModel::new(&Technology::n90())
    }

    #[test]
    fn equalization_starts_exponential_immediately() {
        let m = model();
        // No phase-1 plateau: a tiny time already moves the bitline.
        let v0 = 1.2;
        let v_early = m.equalization_voltage(v0, 1e-12);
        assert!(v_early < v0);
    }

    #[test]
    fn equalization_converges_to_veq() {
        let m = model();
        let v = m.equalization_voltage(1.2, 1e-6);
        assert!((v - 0.6).abs() < 1e-9);
    }

    #[test]
    fn geometry_independent_by_construction() {
        // The model has no geometry input at all; two technologies that
        // differ only in geometry-derived values produce the same model.
        let m = model();
        let cycles = m.presensing_cycles(&Technology::n90());
        assert!(cycles > 0);
    }

    #[test]
    fn u_decays_monotonically() {
        let m = model();
        let mut prev = f64::INFINITY;
        for i in 0..100 {
            let u = m.u(i as f64 * 20e-12);
            assert!(u <= prev + 1e-15);
            prev = u;
        }
    }

    #[test]
    fn underestimates_large_array_settling() {
        // The whole point of the baseline: on a big array it is optimistic
        // versus the full model.
        let tech = Technology::n90();
        let full = ChargeSharingModel::new(&tech, BankGeometry::new(16384, 128));
        let single = model();
        assert!(single.settling_time(0.95) < full.settling_time(0.95));
    }
}
