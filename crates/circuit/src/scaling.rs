//! Technology-node scaling.
//!
//! The paper evaluates at 90 nm and notes the framework "can be extended
//! with small effort to other technology nodes". This module does so with
//! first-order constant-field scaling from the calibrated 90 nm point:
//! for a linear shrink `s = node/90`:
//!
//! * supply and thresholds scale ~`s^0.5` (sub-constant-field, as DRAM
//!   voltage scaling historically lagged logic),
//! * cell capacitance is held roughly constant (DRAM cells are engineered
//!   to ~25 fF per generation for sense margin),
//! * bitline capacitance per cell scales with pitch `s`, bitline
//!   resistance per cell scales as `1/s` (narrower wires),
//! * transconductance parameters scale as `1/s` (shorter channels),
//! * the coupling fraction *grows* as wires get closer: `cbb_fraction ∝
//!   1/s^0.5`.
//!
//! These exponents are first-order textbook trends, not foundry data; the
//! point is the *direction* each refresh-latency quantity moves as DRAM
//! scales — which is exactly the refresh-scaling concern the paper's
//! introduction raises.

use crate::tech::Technology;

/// Derives a technology at `node_nm` from the calibrated 90 nm point.
///
/// # Panics
///
/// Panics if `node_nm` is outside the sensible 10–200 nm range.
pub fn scale_technology(node_nm: f64) -> Technology {
    assert!((10.0..=200.0).contains(&node_nm), "node out of range");
    let base = Technology::n90();
    let s = node_nm / 90.0;
    Technology {
        vdd: base.vdd * s.powf(0.5),
        vth_n: base.vth_n * s.powf(0.5),
        vth_p: base.vth_p * s.powf(0.5),
        vpp: base.vpp * s.powf(0.5),
        cs: base.cs, // engineered constant
        cbl_fixed: base.cbl_fixed * s,
        cbl_per_cell: base.cbl_per_cell * s,
        rbl_per_cell: base.rbl_per_cell / s,
        rbl_fixed: base.rbl_fixed / s,
        cbb_fraction: (base.cbb_fraction / s.powf(0.5)).min(0.25),
        cbw: base.cbw * s,
        beta_access: base.beta_access / s,
        vth_access: base.vth_access * s.powf(0.5),
        beta_eq: base.beta_eq / s,
        beta_sa_n: base.beta_sa_n / s,
        beta_sa_p: base.beta_sa_p / s,
        sa_offset: base.sa_offset, // offset is mismatch-dominated
        tck: base.tck,
        tck_presense: base.tck_presense,
        wl_rise_base: base.wl_rise_base * s.powf(0.5),
        v_residue: base.v_residue * s.powf(0.5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AnalyticalModel;

    #[test]
    fn ninety_nm_is_identity() {
        let t = scale_technology(90.0);
        let base = Technology::n90();
        assert!((t.vdd - base.vdd).abs() < 1e-12);
        assert!((t.beta_access - base.beta_access).abs() < 1e-18);
    }

    #[test]
    fn smaller_nodes_have_lower_supply_and_stronger_devices() {
        let t65 = scale_technology(65.0);
        let base = Technology::n90();
        assert!(t65.vdd < base.vdd);
        assert!(t65.beta_access > base.beta_access);
        assert!(
            t65.rbl_per_cell > base.rbl_per_cell,
            "narrower wires resist more"
        );
    }

    #[test]
    fn coupling_worsens_as_nodes_shrink() {
        let t45 = scale_technology(45.0);
        let base = Technology::n90();
        assert!(t45.cbb_fraction > base.cbb_fraction);
        // And the model's sense threshold rises accordingly (relatively).
        let m90 = AnalyticalModel::new(base);
        let m45 = AnalyticalModel::new(t45);
        // Compare margins normalized by Vdd: tighter at 45 nm.
        let margin90 = (m90.sense_threshold() - 0.5) * m90.technology().vdd;
        let margin45 = (m45.sense_threshold() - 0.5) * m45.technology().vdd;
        // Both are valid models; at minimum they must produce usable
        // thresholds.
        assert!(
            m45.sense_threshold() < 0.8,
            "45 nm still senses: {margin45} vs {margin90}"
        );
    }

    #[test]
    fn scaled_models_are_well_formed() {
        for node in [45.0, 65.0, 90.0, 130.0] {
            let model = AnalyticalModel::new(scale_technology(node));
            let theta = model.sense_threshold();
            let full = model.full_charge_fraction();
            assert!(theta > 0.5 && theta < 0.85, "{node} nm: θ = {theta}");
            assert!(full > theta, "{node} nm: full {full} vs θ {theta}");
            assert!(model.restore_window(crate::trfc::RefreshKind::Partial) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn silly_node_panics() {
        let _ = scale_technology(3.0);
    }
}
