//! Technology parameters (90 nm point) and bank geometry scaling.

use serde::{Deserialize, Serialize};

/// Bank geometry: rows × columns, as in the paper's Table 1 configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BankGeometry {
    /// Number of rows (cells per bitline in the paper's flat-array model).
    pub rows: usize,
    /// Number of columns (bitlines crossed by one wordline).
    pub cols: usize,
}

impl BankGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "bank dimensions must be nonzero");
        BankGeometry { rows, cols }
    }

    /// The paper's evaluation bank: 8192 × 32.
    pub fn paper_default() -> Self {
        BankGeometry {
            rows: 8192,
            cols: 32,
        }
    }

    /// The *operational* electrical segment: commodity DRAM subdivides a
    /// bank into subarrays of ~512 cells per bitline, so the refresh-latency
    /// model (sense margins, restore windows, MPRSF) is evaluated on this
    /// segment. The flat multi-thousand-row geometries of Table 1 are the
    /// paper's modeling-accuracy study, not the operational point.
    pub fn operational_segment() -> Self {
        BankGeometry {
            rows: 512,
            cols: 32,
        }
    }

    /// The six Table 1 configurations, in the paper's order.
    pub fn table1_configs() -> [BankGeometry; 6] {
        [
            BankGeometry {
                rows: 2048,
                cols: 32,
            },
            BankGeometry {
                rows: 2048,
                cols: 128,
            },
            BankGeometry {
                rows: 8192,
                cols: 32,
            },
            BankGeometry {
                rows: 8192,
                cols: 128,
            },
            BankGeometry {
                rows: 16384,
                cols: 32,
            },
            BankGeometry {
                rows: 16384,
                cols: 128,
            },
        ]
    }

    /// Total number of cells.
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }
}

impl std::fmt::Display for BankGeometry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// The full parameter set of the analytical model.
///
/// All electrical values are SI units. The canonical instance is
/// [`Technology::n90`], the 90 nm point the paper evaluates \[37\]; the
/// per-cell scaling constants let the same technology describe the six
/// Table 1 bank geometries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    /// Supply voltage (V).
    pub vdd: f64,
    /// NMOS threshold voltage (V).
    pub vth_n: f64,
    /// PMOS threshold voltage magnitude (V).
    pub vth_p: f64,
    /// Boosted wordline level `Vpp` (V).
    pub vpp: f64,

    /// Cell storage capacitance `Cs` (F).
    pub cs: f64,
    /// Fixed part of the bitline capacitance (sense-amp junctions etc.) (F).
    pub cbl_fixed: f64,
    /// Per-cell bitline capacitance contribution (F/cell).
    pub cbl_per_cell: f64,
    /// Per-cell bitline resistance contribution (Ω/cell).
    pub rbl_per_cell: f64,
    /// Fixed part of the bitline resistance (Ω).
    pub rbl_fixed: f64,
    /// Bitline-to-bitline coupling as a fraction of `Cbl`.
    pub cbb_fraction: f64,
    /// Bitline-to-wordline coupling capacitance `Cbw` (F).
    pub cbw: f64,

    /// Access transistor transconductance parameter `β` (A/V²).
    pub beta_access: f64,
    /// Access transistor threshold (V).
    pub vth_access: f64,
    /// Equalizer transconductance parameter `β_n2` (A/V²).
    pub beta_eq: f64,
    /// Sense-amp NMOS transconductance parameter (A/V²).
    pub beta_sa_n: f64,
    /// Sense-amp PMOS transconductance parameter (A/V²).
    pub beta_sa_p: f64,
    /// Sense-amp input-referred offset the bitline swing must exceed (V).
    pub sa_offset: f64,

    /// Memory cycle time used for the tRFC cycle budgets (s).
    pub tck: f64,
    /// Finer clock used for the Table 1 pre-sensing measurements (s); the
    /// paper quotes pre-sensing in sub-cycles of an internal array clock.
    pub tck_presense: f64,
    /// Wordline rise time for a 32-column array (s); scales with √cols.
    pub wl_rise_base: f64,
    /// Residual voltage difference `V_residue` used in Equation 11 (V).
    pub v_residue: f64,
}

impl Technology {
    /// The 90 nm technology point \[37\] used throughout the paper.
    pub fn n90() -> Self {
        Technology {
            vdd: 1.2,
            vth_n: 0.40,
            vth_p: 0.40,
            vpp: 2.1,
            cs: 25e-15,
            cbl_fixed: 60e-15,
            cbl_per_cell: 0.05e-15,
            rbl_per_cell: 1.0,
            rbl_fixed: 300.0,
            cbb_fraction: 0.05,
            cbw: 1.5e-15,
            // A commodity DRAM access transistor is minimum-size and weak;
            // its current collapses as the cell approaches full charge,
            // which is what makes the last 5% of restoration slow (Fig 1a).
            beta_access: 12e-6,
            vth_access: 0.45,
            beta_eq: 4e-3,
            beta_sa_n: 600e-6,
            beta_sa_p: 300e-6,
            sa_offset: 16e-3,
            tck: 1.0e-9,
            tck_presense: 0.85e-9,
            wl_rise_base: 0.5e-9,
            v_residue: 50e-3,
        }
    }

    /// Equalization target voltage `Veq = Vdd / 2`.
    pub fn veq(&self) -> f64 {
        self.vdd / 2.0
    }

    /// Bitline capacitance for a geometry: fixed + per-cell × rows.
    pub fn cbl(&self, geometry: BankGeometry) -> f64 {
        self.cbl_fixed + self.cbl_per_cell * geometry.rows as f64
    }

    /// Bitline resistance for a geometry.
    pub fn rbl(&self, geometry: BankGeometry) -> f64 {
        self.rbl_fixed + self.rbl_per_cell * geometry.rows as f64
    }

    /// Bitline-to-bitline coupling capacitance (scales with bitline
    /// length, i.e. with `Cbl`).
    pub fn cbb(&self, geometry: BankGeometry) -> f64 {
        self.cbb_fraction * self.cbl(geometry)
    }

    /// Wordline rise time; grows with wordline length as `√(cols/32)`.
    pub fn wl_rise(&self, geometry: BankGeometry) -> f64 {
        self.wl_rise_base * (geometry.cols as f64 / 32.0).sqrt()
    }

    /// Access transistor ON resistance `r_on1 = 1/(β(Vpp − Vsrc − Vth))`
    /// evaluated at a source voltage `vsrc` (paper Equation 3's `R_pre`
    /// component).
    pub fn ron_access(&self, vsrc: f64) -> f64 {
        let vov = self.vpp - vsrc - self.vth_access;
        assert!(vov > 0.0, "access transistor must be on (vov = {vov})");
        1.0 / (self.beta_access * vov)
    }

    /// Pre-sensing series resistance `R_pre = r_on1 + R_bl` at the nominal
    /// charge-sharing operating point (source near `Veq`).
    pub fn r_pre(&self, geometry: BankGeometry) -> f64 {
        self.ron_access(self.veq()) + self.rbl(geometry)
    }

    /// Equalizer ON resistance `r_on2 = 1/(β_n2 (Vg − Veq − Vtn2))`
    /// (paper Equation 2), with the gate at `Vdd`.
    pub fn ron_eq(&self) -> f64 {
        let vov = self.vdd - self.veq() - self.vth_n;
        assert!(vov > 0.0, "equalizer must be on");
        1.0 / (self.beta_eq * vov)
    }

    /// Total capacitance seen during post-sensing restore:
    /// `C_post = Cs + Cbl + 2·Cbb + Cbw` (paper Equation 12).
    pub fn c_post(&self, geometry: BankGeometry) -> f64 {
        self.cs + self.cbl(geometry) + 2.0 * self.cbb(geometry) + self.cbw
    }

    /// Converts this technology to the equivalent transient-simulator
    /// parameter set for a geometry (shared physics for validation).
    pub fn to_spice_params(
        &self,
        geometry: BankGeometry,
    ) -> vrl_spice::circuits::DramCircuitParams {
        use vrl_spice::MosParams;
        vrl_spice::circuits::DramCircuitParams {
            vdd: self.vdd,
            cs: self.cs,
            cbl: self.cbl(geometry),
            rbl: self.rbl(geometry),
            cbb: self.cbb(geometry),
            cbw: self.cbw,
            access: MosParams::nmos(self.vth_access, self.beta_access),
            eq_nmos: MosParams::nmos(self.vth_n, self.beta_eq),
            sa_nmos: MosParams::nmos(self.vth_n, self.beta_sa_n),
            sa_pmos: MosParams::pmos(self.vth_p, self.beta_sa_p),
            wl_rise: self.wl_rise(geometry),
        }
    }
}

impl Default for Technology {
    fn default() -> Self {
        Self::n90()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n90_is_physical() {
        let t = Technology::n90();
        assert!(t.vdd > 0.0);
        assert_eq!(t.veq(), 0.6);
        assert!(t.ron_eq() > 0.0);
        assert!(t.ron_access(t.veq()) > 0.0);
    }

    #[test]
    fn cbl_scales_with_rows() {
        let t = Technology::n90();
        let small = t.cbl(BankGeometry::new(2048, 32));
        let large = t.cbl(BankGeometry::new(16384, 32));
        assert!(large > 2.0 * small);
    }

    #[test]
    fn rbl_scales_with_rows() {
        let t = Technology::n90();
        assert!(t.rbl(BankGeometry::new(16384, 32)) > t.rbl(BankGeometry::new(2048, 32)));
    }

    #[test]
    fn wl_rise_scales_with_cols() {
        let t = Technology::n90();
        let narrow = t.wl_rise(BankGeometry::new(8192, 32));
        let wide = t.wl_rise(BankGeometry::new(8192, 128));
        assert!((wide / narrow - 2.0).abs() < 1e-9, "sqrt(128/32) = 2");
    }

    #[test]
    fn c_post_includes_all_parasitics() {
        let t = Technology::n90();
        let g = BankGeometry::paper_default();
        let c = t.c_post(g);
        assert!(c > t.cs + t.cbl(g));
    }

    #[test]
    fn table1_configs_are_the_papers_six() {
        let cfgs = BankGeometry::table1_configs();
        assert_eq!(cfgs.len(), 6);
        assert_eq!(cfgs[0].to_string(), "2048x32");
        assert_eq!(cfgs[5].to_string(), "16384x128");
    }

    #[test]
    #[should_panic(expected = "dimensions must be nonzero")]
    fn zero_geometry_panics() {
        let _ = BankGeometry::new(0, 32);
    }

    #[test]
    fn spice_params_mirror_technology() {
        let t = Technology::n90();
        let g = BankGeometry::paper_default();
        let p = t.to_spice_params(g);
        assert_eq!(p.vdd, t.vdd);
        assert_eq!(p.cbl, t.cbl(g));
        assert_eq!(p.cs, t.cs);
    }
}
