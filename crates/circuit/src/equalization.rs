//! Two-phase equalization-delay model (paper Section 2.1, Equations 1–2).
//!
//! Before a row can be activated, the bitline pair must be driven to
//! `Veq = Vdd/2`. The paper models this in two phases:
//!
//! * **Phase 1** — the equalizer devices `M2`/`M3` are in saturation and
//!   move the bitline by `Vtn2` at constant current `Idsat2`
//!   (Equation 1: `t_o = Cbl·Vtn2 / Idsat2`).
//! * **Phase 2** — the devices enter the linear region with ON resistance
//!   `r_on2`, and the bitline converges exponentially to `Veq` with time
//!   constant `Req·Cbl`, `Req = Rbl + r_on2` (Equation 2).

use crate::tech::{BankGeometry, Technology};

/// The two-phase equalization model for one bitline pair.
#[derive(Debug, Clone, PartialEq)]
pub struct EqualizationModel {
    vdd: f64,
    veq: f64,
    vtn2: f64,
    cbl: f64,
    idsat2: f64,
    req: f64,
}

impl EqualizationModel {
    /// Builds the model for a technology and bank geometry.
    pub fn new(tech: &Technology, geometry: BankGeometry) -> Self {
        let veq = tech.veq();
        let vov = tech.vdd - veq - tech.vth_n;
        assert!(vov > 0.0, "equalizer gate overdrive must be positive");
        // Equation 1: Idsat2 = βn2/2 · (Vg − Veq − Vtn2)².
        let idsat2 = 0.5 * tech.beta_eq * vov * vov;
        EqualizationModel {
            vdd: tech.vdd,
            veq,
            vtn2: tech.vth_n,
            cbl: tech.cbl(geometry),
            idsat2,
            req: tech.rbl(geometry) + tech.ron_eq(),
        }
    }

    /// Phase-1 duration `t_o = Cbl·Vtn2 / Idsat2` (Equation 1), seconds.
    pub fn t_o(&self) -> f64 {
        self.cbl * self.vtn2 / self.idsat2
    }

    /// Voltage of the high bitline `Bi` (initially `Vdd`) at time `t`.
    ///
    /// Linear discharge during phase 1, then Equation 2's exponential.
    pub fn bl_voltage(&self, t: f64) -> f64 {
        let t_o = self.t_o();
        if t <= 0.0 {
            return self.vdd;
        }
        if t < t_o {
            // Constant-current discharge: slope Idsat2/Cbl.
            return self.vdd - self.idsat2 / self.cbl * t;
        }
        let v_to = self.vdd - self.vtn2;
        self.veq + (v_to - self.veq) * (-(t - t_o) / (self.req * self.cbl)).exp()
    }

    /// Voltage of the complementary bitline `B̄i` (initially 0 V) at `t`.
    pub fn blb_voltage(&self, t: f64) -> f64 {
        // Mirror of the high rail around Veq.
        2.0 * self.veq - self.bl_voltage(t)
    }

    /// Equalization delay `τ_eq`: the time until both rails are within
    /// `tolerance` volts of `Veq`.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not positive.
    pub fn tau_eq(&self, tolerance: f64) -> f64 {
        assert!(tolerance > 0.0, "tolerance must be positive");
        let t_o = self.t_o();
        let v_to = self.vdd - self.vtn2;
        let excess = v_to - self.veq;
        if excess <= tolerance {
            return t_o;
        }
        t_o + self.req * self.cbl * (excess / tolerance).ln()
    }

    /// The exponential time constant of phase 2, `Req·Cbl` (seconds).
    pub fn phase2_time_constant(&self) -> f64 {
        self.req * self.cbl
    }

    /// Saturation current of the equalizer, `Idsat2` (amperes).
    pub fn idsat2(&self) -> f64 {
        self.idsat2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EqualizationModel {
        EqualizationModel::new(&Technology::n90(), BankGeometry::paper_default())
    }

    #[test]
    fn starts_at_rails() {
        let m = model();
        assert_eq!(m.bl_voltage(0.0), 1.2);
        assert!((m.blb_voltage(0.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn converges_to_veq() {
        let m = model();
        let t = m.tau_eq(1e-3);
        assert!((m.bl_voltage(t) - 0.6).abs() < 2e-3);
        assert!((m.blb_voltage(t) - 0.6).abs() < 2e-3);
    }

    #[test]
    fn phase1_is_linear_with_slope_idsat_over_cbl() {
        let m = model();
        let t_half = m.t_o() / 2.0;
        let expected =
            1.2 - m.idsat2() / (Technology::n90().cbl(BankGeometry::paper_default())) * t_half;
        assert!((m.bl_voltage(t_half) - expected).abs() < 1e-12);
    }

    #[test]
    fn phase_boundary_is_continuous() {
        let m = model();
        let t_o = m.t_o();
        let before = m.bl_voltage(t_o * (1.0 - 1e-9));
        let after = m.bl_voltage(t_o * (1.0 + 1e-9));
        assert!((before - after).abs() < 1e-6);
        // At the boundary the bitline has dropped exactly Vtn2.
        assert!((before - (1.2 - 0.4)).abs() < 1e-6);
    }

    #[test]
    fn waveform_is_monotone_decreasing() {
        let m = model();
        let mut prev = f64::INFINITY;
        for i in 0..200 {
            let v = m.bl_voltage(i as f64 * 20e-12);
            assert!(v <= prev + 1e-12);
            prev = v;
        }
    }

    #[test]
    fn complementary_rail_mirrors() {
        let m = model();
        for i in 0..50 {
            let t = i as f64 * 40e-12;
            let sum = m.bl_voltage(t) + m.blb_voltage(t);
            assert!((sum - 1.2).abs() < 1e-12, "rails mirror around Veq");
        }
    }

    #[test]
    fn tau_eq_shrinks_with_looser_tolerance() {
        let m = model();
        assert!(m.tau_eq(0.05) < m.tau_eq(0.001));
    }

    #[test]
    fn larger_bank_equalizes_slower() {
        let t = Technology::n90();
        let small = EqualizationModel::new(&t, BankGeometry::new(2048, 32));
        let large = EqualizationModel::new(&t, BankGeometry::new(16384, 32));
        assert!(large.tau_eq(1e-3) > small.tau_eq(1e-3));
    }
}
