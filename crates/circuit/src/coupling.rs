//! Coupled-bitline sense-margin model (paper Section 2.2, Equations 6–8).
//!
//! The paper's modeling contribution: the maximum voltage change on a
//! bitline depends cyclically on its neighbors through the
//! bitline-to-bitline parasitic `Cbb`:
//!
//! ```text
//! Vsense_i = K1·Lself_i + K2·Vsense_{i−1} + K2·Vsense_{i+1}
//! K1 = Cs / (Cs + Cbl + 2Cbb + Cbw),   K2 = Cbb / (Cs + Cbl + 2Cbb + Cbw)
//! ```
//!
//! and the closed-form solution is `Vsense = K1·K⁻¹·Lself` with `K`
//! tridiagonal (Equation 8). Because `K` is tridiagonal, we solve it in
//! O(N) with the Thomas algorithm rather than forming a dense inverse.
//!
//! One deliberate refinement over the paper's presentation: we keep
//! `Lself` *signed* (positive for a stored 1, negative for a stored 0), so
//! opposite-data neighbors reduce the victim's margin — the physical
//! data-pattern dependence the paper motivates, and the behaviour our
//! transient reference exhibits.

use crate::data_pattern::DataPattern;
use crate::tech::{BankGeometry, Technology};
use vrl_spice::linalg::solve_tridiagonal;

/// Coupled sense-margin solver for the `N` bitlines of one wordline.
#[derive(Debug, Clone, PartialEq)]
pub struct CouplingModel {
    k1: f64,
    k2: f64,
    vdd: f64,
    cols: usize,
}

impl CouplingModel {
    /// Builds the model for a technology and geometry.
    pub fn new(tech: &Technology, geometry: BankGeometry) -> Self {
        let ctot = tech.cs + tech.cbl(geometry) + 2.0 * tech.cbb(geometry) + tech.cbw;
        CouplingModel {
            k1: tech.cs / ctot,
            k2: tech.cbb(geometry) / ctot,
            vdd: tech.vdd,
            cols: geometry.cols,
        }
    }

    /// The paper's `K1` coefficient.
    pub fn k1(&self) -> f64 {
        self.k1
    }

    /// The paper's `K2` coefficient.
    pub fn k2(&self) -> f64 {
        self.k2
    }

    /// Signed self-term `Lself_i = Vs_i(τeq) − Vbl_i(τeq)` for a cell with
    /// stored bit `bit` at charge fraction `charge` (1.0 = fully
    /// refreshed, 0.5 = at the sensing threshold).
    pub fn lself(&self, bit: bool, charge: f64) -> f64 {
        let magnitude = self.vdd * (charge - 0.5);
        if bit {
            magnitude
        } else {
            -magnitude
        }
    }

    /// Solves Equation 8 for the signed sense voltages of all bitlines,
    /// given per-column stored bits and charge fractions.
    ///
    /// # Panics
    ///
    /// Panics if `bits` and `charges` differ in length or are empty.
    pub fn vsense(&self, bits: &[bool], charges: &[f64]) -> Vec<f64> {
        assert_eq!(bits.len(), charges.len(), "bits/charges length mismatch");
        assert!(!bits.is_empty(), "at least one column required");
        let n = bits.len();
        let rhs: Vec<f64> = bits
            .iter()
            .zip(charges)
            .map(|(&b, &q)| self.k1 * self.lself(b, q))
            .collect();
        let lower = vec![-self.k2; n - 1];
        let upper = vec![-self.k2; n - 1];
        let diag = vec![1.0; n];
        solve_tridiagonal(&lower, &diag, &upper, &rhs)
            .expect("K is strictly diagonally dominant for physical K2 < 1/2")
    }

    /// Sense voltages for a uniform charge level under a data pattern.
    pub fn vsense_pattern(&self, pattern: DataPattern, charge: f64) -> Vec<f64> {
        let bits = pattern.bits(self.cols);
        let charges = vec![charge; self.cols];
        self.vsense(&bits, &charges)
    }

    /// The worst-case (smallest-magnitude) sense voltage across all
    /// columns for a pattern at a uniform charge level.
    pub fn worst_case_margin(&self, pattern: DataPattern, charge: f64) -> f64 {
        self.vsense_pattern(pattern, charge)
            .iter()
            .map(|v| v.abs())
            .fold(f64::INFINITY, f64::min)
    }

    /// The worst margin across the paper's four characterization patterns.
    pub fn worst_pattern_margin(&self, charge: f64) -> f64 {
        DataPattern::characterization_set()
            .iter()
            .map(|p| self.worst_case_margin(*p, charge))
            .fold(f64::INFINITY, f64::min)
    }

    /// Closed-form interior solution for an infinite uniform array:
    /// `v = K1·L / (1 − 2K2)` (all cells same data) — the consistency
    /// anchor for the tridiagonal solve.
    pub fn vsense_uniform_limit(&self, lself: f64) -> f64 {
        self.k1 * lself / (1.0 - 2.0 * self.k2)
    }

    /// Closed-form interior solution for an infinite alternating array:
    /// `v = K1·L / (1 + 2K2)`.
    pub fn vsense_alternating_limit(&self, lself: f64) -> f64 {
        self.k1 * lself / (1.0 + 2.0 * self.k2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CouplingModel {
        CouplingModel::new(&Technology::n90(), BankGeometry::paper_default())
    }

    #[test]
    fn k_coefficients_are_physical() {
        let m = model();
        assert!(m.k1() > 0.0 && m.k1() < 1.0);
        assert!(
            m.k2() > 0.0 && m.k2() < 0.5,
            "K2 must keep K diagonally dominant"
        );
        assert!(m.k1() > m.k2(), "cell term dominates coupling term");
    }

    #[test]
    fn uniform_pattern_boosts_interior_margin() {
        let m = model();
        let v = m.vsense_pattern(DataPattern::AllOnes, 1.0);
        let interior = v[v.len() / 2];
        // Same-direction neighbors reinforce: interior exceeds K1·L.
        let solo = m.k1() * m.lself(true, 1.0);
        assert!(interior > solo);
        // And matches the infinite-array closed form.
        let limit = m.vsense_uniform_limit(m.lself(true, 1.0));
        assert!((interior - limit).abs() / limit < 1e-6);
    }

    #[test]
    fn alternating_pattern_reduces_margin() {
        let m = model();
        let uniform = m.worst_case_margin(DataPattern::AllOnes, 1.0);
        let alternating = m.worst_case_margin(DataPattern::Alternating, 1.0);
        assert!(
            alternating < uniform,
            "opposite-data neighbors must reduce margin: {alternating} vs {uniform}"
        );
        let limit = m.vsense_alternating_limit(m.lself(true, 1.0).abs());
        let v = m.vsense_pattern(DataPattern::Alternating, 1.0);
        let interior = v[v.len() / 2].abs();
        assert!((interior - limit).abs() / limit < 1e-6);
    }

    #[test]
    fn margin_scales_with_charge() {
        let m = model();
        let full = m.worst_case_margin(DataPattern::Alternating, 1.0);
        let half = m.worst_case_margin(DataPattern::Alternating, 0.75);
        assert!((half - full / 2.0).abs() < 1e-9, "linear in (charge − 0.5)");
    }

    #[test]
    fn threshold_charge_has_zero_margin() {
        let m = model();
        assert!(m.worst_case_margin(DataPattern::AllOnes, 0.5) < 1e-12);
    }

    #[test]
    fn signs_follow_stored_bits() {
        let m = model();
        let v = m.vsense(&[true, false, true], &[1.0, 1.0, 1.0]);
        assert!(v[0] > 0.0 && v[1] < 0.0 && v[2] > 0.0);
    }

    #[test]
    fn worst_pattern_margin_is_at_most_alternating() {
        // Alternating is the uniformly-bad pattern, but a random pattern
        // can be locally worse: a victim flanked by opposite-data
        // neighbors whose own swings are reinforced by *their* neighbors
        // couples even more strongly. The sweep must capture the minimum.
        let m = model();
        let worst = m.worst_pattern_margin(1.0);
        let alt = m.worst_case_margin(DataPattern::Alternating, 1.0);
        assert!(worst <= alt + 1e-15, "worst {worst} vs alternating {alt}");
        assert!(worst > 0.5 * alt, "but within the same ballpark");
    }

    #[test]
    fn single_column_has_no_coupling() {
        let m = CouplingModel::new(&Technology::n90(), BankGeometry::new(8192, 1));
        let v = m.vsense(&[true], &[1.0]);
        assert!((v[0] - m.k1() * m.lself(true, 1.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_panic() {
        let _ = model().vsense(&[true, false], &[1.0]);
    }
}
