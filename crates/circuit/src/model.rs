//! The [`AnalyticalModel`] facade: the end-to-end refresh-latency model.
//!
//! This is the public entry point the rest of the workspace consumes. It
//! composes the per-phase models on the *operational* electrical segment
//! (512 cells per bitline — see
//! [`BankGeometry::operational_segment`]) and exposes:
//!
//! * the **refresh transfer function** — what charge level a cell ends at
//!   after a full or partial refresh, starting from its current level
//!   ([`AnalyticalModel::fraction_after_refresh`]); the key input to MPRSF
//!   computation,
//! * the **sense threshold** `θ` — the minimum charge fraction at which a
//!   cell can still be sensed reliably under the worst-case data pattern
//!   ([`AnalyticalModel::sense_threshold`]),
//! * the **charge restoration curve** of Figure 1a,
//! * the geometry-scaled **pre-sensing delay** of Table 1.

use crate::charge_sharing::ChargeSharingModel;
use crate::coupling::CouplingModel;
use crate::equalization::EqualizationModel;
use crate::restore::RestoreModel;
use crate::sense_amp::SenseAmpModel;
use crate::tech::{BankGeometry, Technology};
use crate::trfc::{CycleBudget, RefreshKind};

/// The composed analytical refresh model (operational segment).
#[derive(Debug, Clone)]
pub struct AnalyticalModel {
    tech: Technology,
    equalization: EqualizationModel,
    charge_sharing: ChargeSharingModel,
    coupling: CouplingModel,
    sense_amp: SenseAmpModel,
    restore: RestoreModel,
}

impl AnalyticalModel {
    /// Builds the model for a technology.
    pub fn new(tech: Technology) -> Self {
        let seg = BankGeometry::operational_segment();
        let equalization = EqualizationModel::new(&tech, seg);
        let charge_sharing = ChargeSharingModel::new(&tech, seg);
        let coupling = CouplingModel::new(&tech, seg);
        let sense_amp = SenseAmpModel::new(&tech, seg);
        let restore = RestoreModel::new(&tech, sense_amp.r_post());
        AnalyticalModel {
            tech,
            equalization,
            charge_sharing,
            coupling,
            sense_amp,
            restore,
        }
    }

    /// The underlying technology.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// The equalization-phase sub-model.
    pub fn equalization(&self) -> &EqualizationModel {
        &self.equalization
    }

    /// The charge-sharing sub-model (operational segment).
    pub fn charge_sharing(&self) -> &ChargeSharingModel {
        &self.charge_sharing
    }

    /// The coupled-bitline sense-margin sub-model.
    pub fn coupling(&self) -> &CouplingModel {
        &self.coupling
    }

    /// The sense-amplifier sub-model.
    pub fn sense_amp(&self) -> &SenseAmpModel {
        &self.sense_amp
    }

    /// The charge-restoration sub-model.
    pub fn restore(&self) -> &RestoreModel {
        &self.restore
    }

    /// Settled fraction of the final bitline swing at the end of the
    /// `τpre` budget — the `1 − U(τpre)` factor of Equation 5.
    pub fn presense_settled_fraction(&self) -> f64 {
        let tau_pre = CycleBudget::FULL.pre as f64 * self.tech.tck;
        1.0 - self.charge_sharing.u_extended(tau_pre)
    }

    /// Sensing sub-phase budget `t1 + t2 + t3` in whole cycles, evaluated
    /// at the full-charge bitline swing and clamped so at least one restore
    /// cycle remains inside the partial budget.
    pub fn sensing_cycles(&self) -> u32 {
        let swing = self.bitline_swing(1.0);
        let cycles = (self.sense_amp.sensing_delay(swing) / self.tech.tck).ceil() as u32;
        cycles.min(CycleBudget::PARTIAL.post - 1)
    }

    /// The bitline swing seen by the sense amplifier for a cell at charge
    /// fraction `charge` (worst-case data pattern, Equation 5).
    pub fn bitline_swing(&self, charge: f64) -> f64 {
        self.coupling.worst_pattern_margin(charge) * self.presense_settled_fraction()
    }

    /// Restore window (seconds) inside the post-sensing budget of a
    /// refresh kind: `(τpost − sensing) · tck`.
    pub fn restore_window(&self, kind: RefreshKind) -> f64 {
        let budget = CycleBudget::for_kind(kind);
        let restore_cycles = budget.post.saturating_sub(self.sensing_cycles());
        restore_cycles as f64 * self.tech.tck
    }

    /// Restore window for an arbitrary post-sensing budget (the τ_partial
    /// selection sweep of Section 3.1).
    pub fn restore_window_for_post(&self, post_cycles: u32) -> f64 {
        post_cycles.saturating_sub(self.sensing_cycles()) as f64 * self.tech.tck
    }

    /// Cell voltage right after charge sharing, for a cell at `v` volts:
    /// the cell loses part of its signal into the bitline before the
    /// restore phase begins (Equation 12 restores from `Vs(τpre)`).
    pub fn post_share_voltage(&self, v: f64) -> f64 {
        let veq = self.tech.veq();
        let loss = self.presense_settled_fraction() * (1.0 - self.charge_sharing.divider_gain());
        v - loss * (v - veq)
    }

    /// The refresh transfer function: charge fraction (of `Vdd`) after a
    /// refresh of the given kind, starting from `start_fraction`.
    ///
    /// The cell first shares charge with the bitline, then the sense
    /// amplifier restores it for the kind's restore window.
    pub fn fraction_after_refresh(&self, kind: RefreshKind, start_fraction: f64) -> f64 {
        self.fraction_after_window(self.restore_window(kind), start_fraction)
    }

    /// Like [`Self::fraction_after_refresh`] with an explicit restore
    /// window (seconds).
    pub fn fraction_after_window(&self, window: f64, start_fraction: f64) -> f64 {
        let v_shared = self.post_share_voltage(start_fraction * self.tech.vdd);
        self.restore.voltage_after(v_shared, window) / self.tech.vdd
    }

    /// The *guaranteed* full charge fraction: what a full refresh
    /// restores starting from the worst legal sensing charge (the sense
    /// threshold).
    ///
    /// Because the refresh transfer function is monotone in its starting
    /// charge, every full refresh in a legal schedule ends at or above
    /// this level — which makes it the safe anchor for the retention-time
    /// definition (a profiler measures decay from the steady refresh
    /// level, not from a one-off deep restore).
    pub fn full_charge_fraction(&self) -> f64 {
        self.fraction_after_refresh(RefreshKind::Full, self.sense_threshold())
    }

    /// Charge level reached by a single partial refresh of a cell at the
    /// full charge level.
    pub fn partial_charge_fraction(&self) -> f64 {
        self.fraction_after_refresh(RefreshKind::Partial, self.full_charge_fraction())
    }

    /// Effective partial-refresh gap closure: the fraction of the charge
    /// deficit (relative to full) remaining after one partial refresh from
    /// the sensing threshold.
    pub fn gap_closure_partial(&self) -> f64 {
        let full = self.full_charge_fraction();
        let after = self.fraction_after_refresh(RefreshKind::Partial, 0.5);
        ((full - after) / (full - 0.5)).clamp(0.0, 1.0)
    }

    /// The sense threshold `θ`: the minimum charge fraction at which the
    /// worst-case-pattern bitline swing still exceeds the sense-amp offset.
    ///
    /// A cell below `θ` at refresh time is considered to have lost its
    /// data; VRL-DRAM's MPRSF is the number of partial refreshes a cell
    /// sustains while staying above `θ` at every sensing instant.
    pub fn sense_threshold(&self) -> f64 {
        // Swing is linear in (charge − 0.5): swing(q) = s1 · (q − 0.5) where
        // s1 = swing at full charge per unit of (q − 0.5).
        let s1 = self.bitline_swing(1.0) / 0.5;
        0.5 + self.tech.sa_offset / s1
    }

    /// The sense threshold under a *specific* data pattern (the default
    /// [`Self::sense_threshold`] assumes the worst pattern). Friendly
    /// patterns (all-same data) sense at lower charge because neighbor
    /// coupling reinforces the swing.
    pub fn sense_threshold_for_pattern(&self, pattern: crate::data_pattern::DataPattern) -> f64 {
        let margin = self.coupling.worst_case_margin(pattern, 1.0);
        let s1 = margin * self.presense_settled_fraction() / 0.5;
        0.5 + self.tech.sa_offset / s1
    }

    /// The Figure 1a curve: `(fraction of tRFC, fraction of final charge)`
    /// samples across one full refresh operation.
    ///
    /// The refresh timeline is: wordline assert (`τfixed/2`), equalization,
    /// pre-sensing, the sensing sub-phases, the restore window, wordline
    /// deassert (`τfixed/2`).
    pub fn charge_restoration_curve(&self, points: usize) -> Vec<(f64, f64)> {
        let budget = CycleBudget::FULL;
        let total = budget.total() as f64;
        let restore_start =
            (budget.fixed / 2 + budget.eq + budget.pre + self.sensing_cycles()) as f64;
        let restore_end = restore_start + (budget.post - self.sensing_cycles()) as f64;
        let v_start = self.post_share_voltage(0.5 * self.tech.vdd);
        let v_end = self
            .restore
            .voltage_after(v_start, (restore_end - restore_start) * self.tech.tck);
        (0..=points)
            .map(|i| {
                let cycles = total * i as f64 / points as f64;
                let v = if cycles <= restore_start {
                    // Sharing slightly perturbs the cell; plot the post-
                    // share level during the sensing phases.
                    if cycles < (budget.fixed / 2 + budget.eq + budget.pre) as f64 {
                        0.5 * self.tech.vdd
                    } else {
                        v_start
                    }
                } else {
                    let w = (cycles.min(restore_end) - restore_start) * self.tech.tck;
                    self.restore.voltage_after(v_start, w)
                };
                (cycles / total, v / v_end)
            })
            .collect()
    }

    /// Fraction of tRFC needed to restore a cell to `charge_fraction` of
    /// its final charge (the Figure 1a reading: ~60 % of tRFC for the
    /// first 95 %).
    pub fn time_fraction_to_charge_fraction(&self, charge_fraction: f64) -> f64 {
        let curve = self.charge_restoration_curve(2000);
        for (t, q) in &curve {
            if *q >= charge_fraction {
                return *t;
            }
        }
        1.0
    }

    /// Our model's pre-sensing delay (array-clock cycles) for a scaled
    /// bank geometry — the Table 1 "Our Model" column.
    pub fn presensing_cycles(&self, geometry: BankGeometry) -> usize {
        ChargeSharingModel::new(&self.tech, geometry).presensing_cycles(&self.tech)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AnalyticalModel {
        AnalyticalModel::new(Technology::n90())
    }

    #[test]
    fn full_refresh_restores_high_charge() {
        let m = model();
        let full = m.full_charge_fraction();
        assert!(
            full > 0.9,
            "full refresh should exceed 90% of Vdd, got {full}"
        );
        assert!(full <= 1.0);
    }

    #[test]
    fn partial_refresh_restores_less_than_full() {
        let m = model();
        assert!(m.partial_charge_fraction() < m.full_charge_fraction());
        // But still above the raw threshold.
        assert!(m.partial_charge_fraction() > 0.6);
    }

    #[test]
    fn sense_threshold_is_above_half_with_margin() {
        let m = model();
        let theta = m.sense_threshold();
        assert!(theta > 0.55 && theta < 0.75, "θ = {theta}");
    }

    #[test]
    fn per_pattern_thresholds_order_correctly() {
        use crate::data_pattern::DataPattern;
        let m = model();
        let friendly = m.sense_threshold_for_pattern(DataPattern::AllOnes);
        let hostile = m.sense_threshold_for_pattern(DataPattern::Alternating);
        assert!(
            friendly < hostile,
            "same-data neighbors must allow sensing at lower charge: {friendly} vs {hostile}"
        );
        // The default threshold is at least as conservative as any single
        // pattern of the characterization set.
        let default = m.sense_threshold();
        for p in DataPattern::characterization_set() {
            assert!(default + 1e-12 >= m.sense_threshold_for_pattern(p));
        }
    }

    #[test]
    fn restoration_curve_is_monotone_and_normalized() {
        let m = model();
        let curve = m.charge_restoration_curve(200);
        assert_eq!(curve.len(), 201);
        let mut prev = 0.0;
        for (t, q) in &curve {
            assert!(*t >= prev - 1e-12);
            prev = *t;
            assert!(*q > 0.0 && *q <= 1.0 + 1e-9);
        }
        // Ends at 100% of the restored level.
        assert!((curve.last().expect("non-empty").1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn observation1_most_time_for_last_charge() {
        // The headline Figure 1a observation: a large share of tRFC goes
        // to the last few percent of charge.
        let m = model();
        let t95 = m.time_fraction_to_charge_fraction(0.95);
        assert!(t95 > 0.45 && t95 < 0.85, "t95 = {t95}");
        let t995 = m.time_fraction_to_charge_fraction(0.995);
        assert!(
            t995 - t95 > 0.08,
            "last 4.5% takes a while: {} vs {}",
            t995,
            t95
        );
    }

    #[test]
    fn refresh_transfer_function_is_monotone_in_start() {
        let m = model();
        let lo = m.fraction_after_refresh(RefreshKind::Partial, 0.55);
        let hi = m.fraction_after_refresh(RefreshKind::Partial, 0.8);
        assert!(hi >= lo);
    }

    #[test]
    fn partial_window_is_shorter_than_full() {
        let m = model();
        assert!(m.restore_window(RefreshKind::Partial) < m.restore_window(RefreshKind::Full));
        assert!(m.restore_window(RefreshKind::Partial) > 0.0);
    }

    #[test]
    fn sensing_cycles_fit_partial_budget() {
        let m = model();
        assert!(m.sensing_cycles() < CycleBudget::PARTIAL.post);
        assert!(m.sensing_cycles() >= 1);
    }

    #[test]
    fn post_share_voltage_moves_toward_veq() {
        let m = model();
        let v = m.post_share_voltage(1.14);
        assert!(v < 1.14 && v > 0.6);
        // A cell at Veq is unaffected.
        assert!((m.post_share_voltage(0.6) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn successive_partials_decline_toward_fixed_point() {
        // Figure 1b dynamics: repeated partial refreshes yield declining
        // peaks converging to a fixed point.
        let m = model();
        let mut v = m.full_charge_fraction();
        let mut prev = v;
        for i in 0..12 {
            v = m.fraction_after_refresh(RefreshKind::Partial, v * 0.9); // mild decay
            assert!(v <= prev + 1e-9, "peak {i} should not grow");
            prev = v;
        }
        assert!(v > 0.5, "fixed point stays above threshold for mild decay");
    }

    #[test]
    fn presensing_cycles_grow_with_geometry() {
        let m = model();
        let small = m.presensing_cycles(BankGeometry::new(2048, 32));
        let large = m.presensing_cycles(BankGeometry::new(16384, 128));
        assert!(large > small);
    }
}
