//! Refresh planning: from a retention profile to Algorithm 1 state.

use vrl_circuit::model::AnalyticalModel;
use vrl_dram_sim::policy::{Raidr, Vrl, VrlAccess};
use vrl_retention::binning::BinningTable;
use vrl_retention::profile::BankProfile;

use crate::mprsf::MprsfCalculator;

/// A complete refresh plan for one bank: the binning (refresh periods)
/// plus the per-row saturated MPRSF values.
///
/// # Example
///
/// ```
/// use vrl_circuit::model::AnalyticalModel;
/// use vrl_circuit::tech::Technology;
/// use vrl_dram::plan::RefreshPlan;
/// use vrl_retention::profile::BankProfile;
///
/// let model = AnalyticalModel::new(Technology::n90());
/// // Two strong rows and one near the bin boundary.
/// let profile = BankProfile::from_rows(vec![2000.0, 1500.0, 260.0], 32);
/// let plan = RefreshPlan::build(&model, &profile, 2, 0.0);
/// assert_eq!(plan.mprsf().len(), 3);
/// // The boundary row cannot sustain partial refreshes.
/// assert_eq!(plan.mprsf()[2], 0);
/// // The plan instantiates the simulator policies directly.
/// let _policy = plan.vrl_access();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshPlan {
    bins: BinningTable,
    mprsf: Vec<u8>,
    nbits: u32,
}

impl RefreshPlan {
    /// Builds a plan from a profile using the analytical model.
    pub fn build(
        model: &AnalyticalModel,
        profile: &BankProfile,
        nbits: u32,
        guard_band: f64,
    ) -> Self {
        let bins = BinningTable::from_profile(profile);
        let calc = MprsfCalculator::new(model, guard_band);
        // Memoized per (bin, period): O(bins) fixed-point iterations
        // instead of O(rows), bit-identical to the direct table.
        let mprsf = calc.mprsf_table_memo(profile, &bins, nbits);
        RefreshPlan { bins, mprsf, nbits }
    }

    /// The binning table.
    pub fn bins(&self) -> &BinningTable {
        &self.bins
    }

    /// Per-row saturated MPRSF values.
    pub fn mprsf(&self) -> &[u8] {
        &self.mprsf
    }

    /// Counter width.
    pub fn nbits(&self) -> u32 {
        self.nbits
    }

    /// Histogram of MPRSF values (index = MPRSF, value = row count).
    pub fn mprsf_histogram(&self) -> Vec<usize> {
        let cap = ((1u16 << self.nbits) - 1) as usize;
        let mut hist = vec![0usize; cap + 1];
        for &m in &self.mprsf {
            hist[m as usize] += 1;
        }
        hist
    }

    /// Mean refresh latency per refresh operation under this plan
    /// (cycles), amortizing `m` partials per full: `(τf + m·τp)/(m+1)`.
    pub fn mean_refresh_cycles(&self, tau_full: u64, tau_partial: u64) -> f64 {
        let total: f64 = self
            .mprsf
            .iter()
            .map(|&m| {
                let m = m as f64;
                (tau_full as f64 + m * tau_partial as f64) / (m + 1.0)
            })
            .sum();
        total / self.mprsf.len() as f64
    }

    /// Instantiates the RAIDR baseline policy over the same binning.
    pub fn raidr(&self) -> Raidr {
        Raidr::new(self.bins.clone())
    }

    /// Instantiates the VRL policy.
    pub fn vrl(&self) -> Vrl {
        Vrl::new(self.bins.clone(), self.mprsf.clone())
    }

    /// Instantiates the VRL-Access policy.
    pub fn vrl_access(&self) -> VrlAccess {
        VrlAccess::new(self.bins.clone(), self.mprsf.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrl_circuit::tech::Technology;
    use vrl_retention::distribution::RetentionDistribution;

    fn plan() -> RefreshPlan {
        let model = AnalyticalModel::new(Technology::n90());
        let profile = BankProfile::generate(&RetentionDistribution::liu_et_al(), 1024, 32, 7);
        RefreshPlan::build(&model, &profile, 2, 0.0)
    }

    #[test]
    fn plan_has_row_counts_consistent() {
        let p = plan();
        assert_eq!(p.mprsf().len(), 1024);
        assert_eq!(p.bins().total_rows(), 1024);
        assert_eq!(p.mprsf_histogram().iter().sum::<usize>(), 1024);
    }

    #[test]
    fn histogram_is_spread_not_degenerate() {
        // The retention heterogeneity must produce a *mix* of MPRSF
        // values — that is the paper's whole premise.
        let hist = plan().mprsf_histogram();
        let nonzero = hist.iter().filter(|&&c| c > 0).count();
        assert!(nonzero >= 2, "MPRSF histogram is degenerate: {hist:?}");
    }

    #[test]
    fn mean_refresh_cycles_between_partial_and_full() {
        let mean = plan().mean_refresh_cycles(19, 11);
        assert!(mean > 11.0 && mean < 19.0, "mean = {mean}");
    }

    #[test]
    fn policies_share_binning() {
        let p = plan();
        let raidr = p.raidr();
        use vrl_dram_sim::policy::RefreshPolicy;
        let vrl = p.vrl();
        for row in [0u32, 100, 1023] {
            assert_eq!(raidr.period_ms(row), vrl.period_ms(row));
        }
    }
}
