//! Crash-consistent checkpoint/resume for experiment runs.
//!
//! A checkpoint is a self-contained, versioned, checksummed snapshot of
//! one run: a header binding it to the front end, benchmark, policy, and
//! [`ExperimentConfig`] it came from, followed by the engine's full
//! run-state (bank FSMs, timing-wheel refresh queues, RNG streams,
//! policy degradation ladders, statistics, and — for traced runs — the
//! event ring). Files are written with [`vrl_snap::write_atomic`]
//! (temp file + `sync_all` + rename), so a crash mid-write never leaves
//! a torn checkpoint: the previous complete one survives.
//!
//! Because every front end's span/pause machinery inserts *no* state
//! change at a pause point, a run resumed from any checkpoint is
//! bit-identical to the uninterrupted run — the property
//! `tests/checkpoint_resume.rs` kills runs at arbitrary cycles to
//! assert.
//!
//! Resume is **flag-free**: [`resume`] reads everything it needs from
//! the header (the trace is regenerated deterministically from the
//! embedded seed and skipped to the consumption point), so
//! `vrl <cmd> --resume FILE` needs no other arguments. A snapshot is
//! only readable by the [`vrl_snap::FORMAT_VERSION`] that wrote it, and
//! the header config must reconstruct the identical experiment — both
//! invariants surface as typed errors, never garbage state.
//!
//! Scheduler checkpoints record the rank geometry and scheduling knobs
//! but assume the paper-default timing parameters (the only timing the
//! harness constructs); resuming a run made with hand-built custom
//! timings is out of scope (see DESIGN.md §12).

use std::path::{Path, PathBuf};

use vrl_dram_sim::controller::{ControllerStats, FrFcfsController};
use vrl_dram_sim::policy::PolicyState;
use vrl_dram_sim::sim::{NullObserver, SimConfig, SimObserver, Simulator};
use vrl_dram_sim::stats::SimStats;
use vrl_dram_sim::AutoRefresh;
use vrl_obs::{EventStream, Recorder};
use vrl_sched::{SchedConfig, SchedStats, Scheduler};
use vrl_snap::{Decoder, Encoder, SnapError, Snapshot as _};
use vrl_trace::TraceRecord;

use crate::error::Error;
use crate::experiment::{Experiment, ExperimentConfig, MatrixCell, PolicyKind};

/// Checkpoint cadence and destination for one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Where snapshots are written (each overwrites the last,
    /// atomically).
    pub path: PathBuf,
    /// Pause and snapshot roughly every this many simulated cycles.
    pub every_cycles: u64,
    /// Stop the run after this many snapshots (`None` = run to
    /// completion). The kill-and-resume tests and the CI smoke job use
    /// this to simulate a crash at a checkpoint boundary.
    pub halt_after: Option<u32>,
}

impl CheckpointConfig {
    /// Checkpoints to `path` every `every_cycles` simulated cycles.
    pub fn new(path: impl Into<PathBuf>, every_cycles: u64) -> Self {
        CheckpointConfig {
            path: path.into(),
            every_cycles,
            halt_after: None,
        }
    }

    /// Halt the run after `count` snapshots (simulating a crash there).
    #[must_use]
    pub fn with_halt_after(mut self, count: u32) -> Self {
        self.halt_after = Some(count);
        self
    }

    fn validated(&self) -> Result<(), Error> {
        if self.every_cycles == 0 {
            return Err(Error::Snapshot(SnapError::Malformed {
                what: "checkpoint cadence must be positive".to_owned(),
            }));
        }
        Ok(())
    }
}

/// How a checkpointed run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointOutcome<S> {
    /// The run finished; the final statistics.
    Completed(S),
    /// The run halted at a checkpoint boundary
    /// ([`CheckpointConfig::halt_after`]); resume from the snapshot to
    /// continue.
    Halted {
        /// Snapshots written before halting.
        checkpoints: u32,
    },
}

impl<S> CheckpointOutcome<S> {
    /// The final statistics, if the run completed.
    pub fn completed(self) -> Option<S> {
        match self {
            CheckpointOutcome::Completed(s) => Some(s),
            CheckpointOutcome::Halted { .. } => None,
        }
    }
}

/// Which engine a checkpoint belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontEndKind {
    /// The single-bank [`Simulator`].
    Sim,
    /// The single-bank [`FrFcfsController`].
    FrFcfs,
    /// The multi-bank [`Scheduler`].
    Sched,
}

impl FrontEndKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            FrontEndKind::Sim => "sim",
            FrontEndKind::FrFcfs => "frfcfs",
            FrontEndKind::Sched => "sched",
        }
    }
}

impl vrl_snap::Snapshot for FrontEndKind {
    fn save(&self, enc: &mut Encoder) {
        enc.put_u8(match self {
            FrontEndKind::Sim => 0,
            FrontEndKind::FrFcfs => 1,
            FrontEndKind::Sched => 2,
        });
    }

    fn load(dec: &mut Decoder<'_>) -> Result<Self, SnapError> {
        match dec.take_u8()? {
            0 => Ok(FrontEndKind::Sim),
            1 => Ok(FrontEndKind::FrFcfs),
            2 => Ok(FrontEndKind::Sched),
            tag => Err(SnapError::Malformed {
                what: format!("unknown front-end tag {tag}"),
            }),
        }
    }
}

impl vrl_snap::Snapshot for PolicyKind {
    fn save(&self, enc: &mut Encoder) {
        enc.put_u8(match self {
            PolicyKind::Auto => 0,
            PolicyKind::Raidr => 1,
            PolicyKind::Vrl => 2,
            PolicyKind::VrlAccess => 3,
        });
    }

    fn load(dec: &mut Decoder<'_>) -> Result<Self, SnapError> {
        match dec.take_u8()? {
            0 => Ok(PolicyKind::Auto),
            1 => Ok(PolicyKind::Raidr),
            2 => Ok(PolicyKind::Vrl),
            3 => Ok(PolicyKind::VrlAccess),
            tag => Err(SnapError::Malformed {
                what: format!("unknown policy tag {tag}"),
            }),
        }
    }
}

impl vrl_snap::Snapshot for ExperimentConfig {
    fn save(&self, enc: &mut Encoder) {
        enc.put_u32(self.rows);
        enc.put_u32(self.cells_per_row);
        enc.put_u64(self.seed);
        enc.put_f64(self.duration_ms);
        enc.put_u32(self.nbits);
        enc.put_f64(self.guard_band);
    }

    fn load(dec: &mut Decoder<'_>) -> Result<Self, SnapError> {
        Ok(ExperimentConfig {
            rows: dec.take_u32()?,
            cells_per_row: dec.take_u32()?,
            seed: dec.take_u64()?,
            duration_ms: dec.take_f64()?,
            nbits: dec.take_u32()?,
            guard_band: dec.take_f64()?,
        })
    }
}

/// The scheduler knobs a checkpoint must reproduce (geometry plus the
/// refresh-elasticity configuration; timing is paper-default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SchedShape {
    channels: u32,
    ranks: u32,
    banks_per_rank: u32,
    rows_per_bank: u32,
    queue_depth: usize,
    slack: u64,
    parallel_refresh: bool,
    staggered: bool,
}

impl SchedShape {
    fn of(config: &SchedConfig) -> Self {
        SchedShape {
            channels: config.channels(),
            ranks: config.ranks(),
            banks_per_rank: config.banks_per_rank(),
            rows_per_bank: config.rows_per_bank(),
            queue_depth: config.queue_depth,
            slack: config.slack,
            parallel_refresh: config.parallel_refresh,
            staggered: config.staggered,
        }
    }

    fn to_config(self) -> Result<SchedConfig, Error> {
        let mut config = SchedConfig::with_dimm_geometry(
            self.channels,
            self.ranks,
            self.banks_per_rank,
            self.rows_per_bank,
        )?
        .with_queue_depth(self.queue_depth)
        .with_slack(self.slack)
        .with_parallelism(self.parallel_refresh);
        if !self.staggered {
            config = config.with_burst_refresh();
        }
        Ok(config)
    }
}

impl vrl_snap::Snapshot for SchedShape {
    fn save(&self, enc: &mut Encoder) {
        enc.put_u32(self.channels);
        enc.put_u32(self.ranks);
        enc.put_u32(self.banks_per_rank);
        enc.put_u32(self.rows_per_bank);
        enc.put_usize(self.queue_depth);
        enc.put_u64(self.slack);
        enc.put_bool(self.parallel_refresh);
        enc.put_bool(self.staggered);
    }

    fn load(dec: &mut Decoder<'_>) -> Result<Self, SnapError> {
        Ok(SchedShape {
            channels: dec.take_u32()?,
            ranks: dec.take_u32()?,
            banks_per_rank: dec.take_u32()?,
            rows_per_bank: dec.take_u32()?,
            queue_depth: dec.take_usize()?,
            slack: dec.take_u64()?,
            parallel_refresh: dec.take_bool()?,
            staggered: dec.take_bool()?,
        })
    }
}

/// Everything a snapshot needs to reconstruct its run from scratch.
#[derive(Debug, Clone, PartialEq)]
struct Header {
    front_end: FrontEndKind,
    benchmark: String,
    policy: PolicyKind,
    config: ExperimentConfig,
    /// FR-FCFS request-queue depth ([`FrontEndKind::FrFcfs`] only).
    queue_depth: usize,
    /// Scheduler shape ([`FrontEndKind::Sched`] only).
    sched: Option<SchedShape>,
    /// Whether the run records a structured event trace (the observer's
    /// ring is then part of the engine state).
    traced: bool,
}

impl vrl_snap::Snapshot for Header {
    fn save(&self, enc: &mut Encoder) {
        self.front_end.save(enc);
        self.benchmark.save(enc);
        self.policy.save(enc);
        self.config.save(enc);
        enc.put_usize(self.queue_depth);
        self.sched.save(enc);
        enc.put_bool(self.traced);
    }

    fn load(dec: &mut Decoder<'_>) -> Result<Self, SnapError> {
        Ok(Header {
            front_end: FrontEndKind::load(dec)?,
            benchmark: String::load(dec)?,
            policy: PolicyKind::load(dec)?,
            config: ExperimentConfig::load(dec)?,
            queue_depth: dec.take_usize()?,
            sched: Option::<SchedShape>::load(dec)?,
            traced: dec.take_bool()?,
        })
    }
}

/// Observers that can snapshot their recording state alongside the
/// engine. [`NullObserver`] has none; a [`Recorder`] checkpoints its
/// event ring so a resumed traced run regenerates the identical stream.
trait ObserverState: SimObserver {
    fn save_obs(&self, enc: &mut Encoder);
    fn restore_obs(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapError>;
}

impl ObserverState for NullObserver {
    fn save_obs(&self, _enc: &mut Encoder) {}
    fn restore_obs(&mut self, _dec: &mut Decoder<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

impl ObserverState for Recorder {
    fn save_obs(&self, enc: &mut Encoder) {
        self.save_state(enc);
    }
    fn restore_obs(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapError> {
        self.restore_state(dec)
    }
}

fn write_checkpoint(path: &Path, sealed: &[u8]) -> Result<(), Error> {
    vrl_snap::write_atomic(path, sealed).map_err(Error::Snapshot)
}

/// Dispatches over [`PolicyKind`] with the concrete policy bound in
/// scope, so the generic drive functions monomorphize per policy.
macro_rules! with_policy {
    ($kind:expr, $plan:expr, |$p:ident| $body:expr) => {
        match $kind {
            PolicyKind::Auto => {
                let $p = AutoRefresh::new(64.0);
                $body
            }
            PolicyKind::Raidr => {
                let $p = $plan.raidr();
                $body
            }
            PolicyKind::Vrl => {
                let $p = $plan.vrl();
                $body
            }
            PolicyKind::VrlAccess => {
                let $p = $plan.vrl_access();
                $body
            }
        }
    };
}
pub(crate) use with_policy;

/// One checkpoint payload: header, resume point, engine state, observer
/// state — sealed into the versioned, checksummed envelope.
fn seal_payload(
    header: &Header,
    stop: u64,
    consumed: u64,
    engine: impl FnOnce(&mut Encoder),
    observer: &impl ObserverState,
) -> Vec<u8> {
    let mut enc = Encoder::new();
    header.save(&mut enc);
    enc.put_u64(stop);
    enc.put_u64(consumed);
    engine(&mut enc);
    observer.save_obs(&mut enc);
    vrl_snap::seal(&enc.into_bytes())
}

impl Experiment {
    /// [`Experiment::run_policy`] with crash-consistent checkpoints: the
    /// single-bank simulator pauses every
    /// [`CheckpointConfig::every_cycles`] and atomically snapshots its
    /// full state to [`CheckpointConfig::path`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownWorkload`] for an unknown benchmark and
    /// [`Error::Snapshot`] for a zero cadence or a failed write.
    pub fn run_policy_checkpointed(
        &self,
        kind: PolicyKind,
        benchmark: &str,
        ckpt: &CheckpointConfig,
    ) -> Result<CheckpointOutcome<SimStats>, Error> {
        ckpt.validated()?;
        let header = Header {
            front_end: FrontEndKind::Sim,
            benchmark: benchmark.to_owned(),
            policy: kind,
            config: *self.config(),
            queue_depth: 0,
            sched: None,
            traced: false,
        };
        let trace = self.trace(benchmark)?;
        with_policy!(kind, self.plan(), |p| {
            let mut sim = Simulator::new(SimConfig::with_rows(self.config().rows), p);
            drive_sim(
                &mut sim,
                trace,
                &header,
                ckpt,
                ckpt.every_cycles,
                0,
                0,
                &mut NullObserver,
            )
        })
    }

    /// [`Experiment::run_frfcfs`] with crash-consistent checkpoints.
    ///
    /// # Errors
    ///
    /// See [`Experiment::run_policy_checkpointed`]; additionally
    /// [`Error::Sim`] for an invalid queue depth.
    pub fn run_frfcfs_checkpointed(
        &self,
        kind: PolicyKind,
        benchmark: &str,
        queue_depth: usize,
        ckpt: &CheckpointConfig,
    ) -> Result<CheckpointOutcome<ControllerStats>, Error> {
        ckpt.validated()?;
        let header = Header {
            front_end: FrontEndKind::FrFcfs,
            benchmark: benchmark.to_owned(),
            policy: kind,
            config: *self.config(),
            queue_depth,
            sched: None,
            traced: false,
        };
        let trace = self.trace(benchmark)?;
        with_policy!(kind, self.plan(), |p| {
            let mut ctl =
                FrFcfsController::new(SimConfig::with_rows(self.config().rows), p, queue_depth)?;
            drive_frfcfs(
                &mut ctl,
                trace,
                &header,
                ckpt,
                ckpt.every_cycles,
                0,
                None,
                &mut NullObserver,
            )
        })
    }

    /// [`Experiment::run_scheduled`] with crash-consistent checkpoints.
    ///
    /// # Errors
    ///
    /// See [`Experiment::run_policy_checkpointed`]; additionally
    /// [`Error::Sim`] for a scheduler configuration failure.
    pub fn run_scheduled_checkpointed(
        &self,
        kind: PolicyKind,
        benchmark: &str,
        sched: SchedConfig,
        ckpt: &CheckpointConfig,
    ) -> Result<CheckpointOutcome<SchedStats>, Error> {
        ckpt.validated()?;
        let header = Header {
            front_end: FrontEndKind::Sched,
            benchmark: benchmark.to_owned(),
            policy: kind,
            config: *self.config(),
            queue_depth: 0,
            sched: Some(SchedShape::of(&sched)),
            traced: false,
        };
        let trace = self.trace(benchmark)?;
        with_policy!(kind, self.plan(), |p| {
            let mut engine = Scheduler::new(sched, p)?;
            drive_sched(
                &mut engine,
                trace,
                &header,
                ckpt,
                ckpt.every_cycles,
                0,
                None,
                &mut NullObserver,
            )
            .map(|out| out.map_stats())
        })
    }

    /// [`Experiment::run_scheduled_traced`] with crash-consistent
    /// checkpoints: the recorder's event ring is part of the snapshot,
    /// so a resumed traced run produces the identical event stream.
    ///
    /// # Errors
    ///
    /// See [`Experiment::run_scheduled_checkpointed`].
    pub fn run_scheduled_traced_checkpointed(
        &self,
        kind: PolicyKind,
        benchmark: &str,
        sched: SchedConfig,
        ckpt: &CheckpointConfig,
    ) -> Result<CheckpointOutcome<(SchedStats, EventStream)>, Error> {
        ckpt.validated()?;
        let header = Header {
            front_end: FrontEndKind::Sched,
            benchmark: benchmark.to_owned(),
            policy: kind,
            config: *self.config(),
            queue_depth: 0,
            sched: Some(SchedShape::of(&sched)),
            traced: true,
        };
        let trace = self.trace(benchmark)?;
        let mut recorder = Recorder::new(benchmark, kind.name(), sched.rows_per_bank());
        let outcome = with_policy!(kind, self.plan(), |p| {
            let mut engine = Scheduler::new(sched, p)?;
            drive_sched(
                &mut engine,
                trace,
                &header,
                ckpt,
                ckpt.every_cycles,
                0,
                None,
                &mut recorder,
            )?
        });
        Ok(match outcome {
            SchedOutcome::Completed(stats) => {
                CheckpointOutcome::Completed((stats, recorder.finish()))
            }
            SchedOutcome::Halted { checkpoints } => CheckpointOutcome::Halted { checkpoints },
        })
    }
}

/// Scheduler drive outcome before the traced/untraced split. A
/// short-lived return value, so the stats stay unboxed despite the
/// variant size gap.
#[allow(clippy::large_enum_variant)]
enum SchedOutcome {
    Completed(SchedStats),
    Halted { checkpoints: u32 },
}

impl SchedOutcome {
    fn map_stats(self) -> CheckpointOutcome<SchedStats> {
        match self {
            SchedOutcome::Completed(s) => CheckpointOutcome::Completed(s),
            SchedOutcome::Halted { checkpoints } => CheckpointOutcome::Halted { checkpoints },
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn drive_sim<P, I, O>(
    sim: &mut Simulator<P>,
    trace: I,
    header: &Header,
    ckpt: &CheckpointConfig,
    mut stop: u64,
    mut consumed: u64,
    mut written: u32,
    observer: &mut O,
) -> Result<CheckpointOutcome<SimStats>, Error>
where
    P: vrl_dram_sim::policy::RefreshPolicy + PolicyState,
    I: Iterator<Item = TraceRecord>,
    O: ObserverState,
{
    let end = vrl_dram_sim::TimingParams::paper_default().ms_to_cycles(header.config.duration_ms);
    let mut trace = trace.peekable();
    loop {
        let span_end = stop.min(end);
        consumed += sim.run_span_observed(&mut trace, span_end, observer);
        if span_end >= end {
            return Ok(CheckpointOutcome::Completed(
                sim.finish_observed(end, observer),
            ));
        }
        let payload = seal_payload(
            header,
            span_end,
            consumed,
            |enc| sim.save_state(enc),
            observer,
        );
        write_checkpoint(&ckpt.path, &payload)?;
        written += 1;
        if ckpt.halt_after.is_some_and(|k| written >= k) {
            return Ok(CheckpointOutcome::Halted {
                checkpoints: written,
            });
        }
        stop = stop.saturating_add(ckpt.every_cycles);
    }
}

#[allow(clippy::too_many_arguments)]
fn drive_frfcfs<P, I, O>(
    ctl: &mut FrFcfsController<P>,
    trace: I,
    header: &Header,
    ckpt: &CheckpointConfig,
    mut stop: u64,
    mut written: u32,
    cursor: Option<vrl_dram_sim::controller::ControllerCursor>,
    observer: &mut O,
) -> Result<CheckpointOutcome<ControllerStats>, Error>
where
    P: vrl_dram_sim::policy::RefreshPolicy + PolicyState,
    I: Iterator<Item = TraceRecord>,
    O: ObserverState,
{
    let end = vrl_dram_sim::TimingParams::paper_default().ms_to_cycles(header.config.duration_ms);
    let mut cursor = cursor.unwrap_or_default();
    let skip = cursor.pulled() as usize;
    let mut trace = trace.take_while(|r| r.cycle < end).skip(skip).peekable();
    loop {
        let paused = ctl.run_span_observed(&mut cursor, &mut trace, end, stop, observer)?;
        if !paused {
            return Ok(CheckpointOutcome::Completed(ctl.finish(end)));
        }
        let payload = seal_payload(
            header,
            stop,
            cursor.pulled(),
            |enc| ctl.save_state(enc, &cursor),
            observer,
        );
        write_checkpoint(&ckpt.path, &payload)?;
        written += 1;
        if ckpt.halt_after.is_some_and(|k| written >= k) {
            return Ok(CheckpointOutcome::Halted {
                checkpoints: written,
            });
        }
        stop = stop.saturating_add(ckpt.every_cycles);
    }
}

#[allow(clippy::too_many_arguments)]
fn drive_sched<P, I, O>(
    engine: &mut Scheduler<P>,
    trace: I,
    header: &Header,
    ckpt: &CheckpointConfig,
    mut stop: u64,
    mut written: u32,
    cursor: Option<vrl_sched::SchedCursor>,
    observer: &mut O,
) -> Result<SchedOutcome, Error>
where
    P: vrl_dram_sim::policy::RefreshPolicy + PolicyState,
    I: Iterator<Item = TraceRecord>,
    O: ObserverState,
{
    let end = vrl_dram_sim::TimingParams::paper_default().ms_to_cycles(header.config.duration_ms);
    let mut cursor = cursor.unwrap_or_default();
    let skip = cursor.pulled() as usize;
    let mut trace = trace.take_while(|r| r.cycle < end).skip(skip).peekable();
    loop {
        let paused = engine.run_span_observed(&mut cursor, &mut trace, end, stop, observer)?;
        if !paused {
            return Ok(SchedOutcome::Completed(engine.finish(end)));
        }
        let payload = seal_payload(
            header,
            stop,
            cursor.pulled(),
            |enc| engine.save_state(enc, &cursor),
            observer,
        );
        write_checkpoint(&ckpt.path, &payload)?;
        written += 1;
        if ckpt.halt_after.is_some_and(|k| written >= k) {
            return Ok(SchedOutcome::Halted {
                checkpoints: written,
            });
        }
        stop = stop.saturating_add(ckpt.every_cycles);
    }
}

/// The engine-specific statistics a resumed run produced.
#[derive(Debug, Clone, PartialEq)]
pub enum ResumedStats {
    /// Single-bank simulator statistics.
    Sim(SimStats),
    /// FR-FCFS controller statistics.
    FrFcfs(ControllerStats),
    /// Multi-bank scheduler statistics.
    Sched(SchedStats),
}

/// The outcome of [`resume`].
#[derive(Debug)]
pub struct ResumeReport {
    /// Which engine the snapshot came from.
    pub front_end: FrontEndKind,
    /// The benchmark the run simulates.
    pub benchmark: String,
    /// The refresh policy under test.
    pub policy: PolicyKind,
    /// How the continued run ended.
    pub outcome: CheckpointOutcome<ResumedStats>,
    /// The recorded event stream, for traced snapshots that ran to
    /// completion.
    pub events: Option<EventStream>,
}

/// Resumes a checkpointed run from `path` and drives it to completion
/// (or to the next halt, if `ckpt` keeps checkpointing with
/// [`CheckpointConfig::halt_after`] set).
///
/// The snapshot is self-contained: the experiment, trace, and engine are
/// reconstructed from the header, the deterministic trace is skipped to
/// the consumption point, and the engine state is restored — the
/// continued run is bit-identical to one that never paused. Pass `ckpt`
/// to keep writing checkpoints on the continued run (the cadence
/// restarts from the snapshot's pause point), or `None` to run straight
/// through.
///
/// # Errors
///
/// Returns [`Error::Snapshot`] for an unreadable, corrupt,
/// version-mismatched, or differently-shaped snapshot.
pub fn resume(path: &Path, ckpt: Option<&CheckpointConfig>) -> Result<ResumeReport, Error> {
    let bytes = vrl_snap::read_file(path)?;
    let payload = vrl_snap::open(&bytes)?;
    let mut dec = Decoder::new(payload);
    let header = Header::load(&mut dec)?;
    let stop = dec.take_u64()?;
    let consumed = dec.take_u64()?;

    let experiment = Experiment::new(header.config);
    let trace = experiment.trace(&header.benchmark)?;
    // Continue checkpointing on the caller's cadence, or run straight
    // through (a cadence past the horizon never pauses again).
    let fallback = CheckpointConfig::new(path, u64::MAX);
    let cont = ckpt.unwrap_or(&fallback);
    cont.validated()?;
    let next_stop = stop.saturating_add(cont.every_cycles);

    match header.front_end {
        FrontEndKind::Sim => with_policy!(header.policy, experiment.plan(), |p| {
            let mut sim = Simulator::new(SimConfig::with_rows(header.config.rows), p);
            sim.restore_state(&mut dec)?;
            let trace = trace.skip(consumed as usize);
            let outcome = drive_sim(
                &mut sim,
                trace,
                &header,
                cont,
                next_stop,
                consumed,
                0,
                &mut NullObserver,
            )?;
            Ok(ResumeReport {
                front_end: header.front_end,
                benchmark: header.benchmark.clone(),
                policy: header.policy,
                outcome: match outcome {
                    CheckpointOutcome::Completed(s) => {
                        CheckpointOutcome::Completed(ResumedStats::Sim(s))
                    }
                    CheckpointOutcome::Halted { checkpoints } => {
                        CheckpointOutcome::Halted { checkpoints }
                    }
                },
                events: None,
            })
        }),
        FrontEndKind::FrFcfs => with_policy!(header.policy, experiment.plan(), |p| {
            let mut ctl = FrFcfsController::new(
                SimConfig::with_rows(header.config.rows),
                p,
                header.queue_depth,
            )?;
            let cursor = ctl.restore_state(&mut dec)?;
            let outcome = drive_frfcfs(
                &mut ctl,
                trace,
                &header,
                cont,
                next_stop,
                0,
                Some(cursor),
                &mut NullObserver,
            )?;
            Ok(ResumeReport {
                front_end: header.front_end,
                benchmark: header.benchmark.clone(),
                policy: header.policy,
                outcome: match outcome {
                    CheckpointOutcome::Completed(s) => {
                        CheckpointOutcome::Completed(ResumedStats::FrFcfs(s))
                    }
                    CheckpointOutcome::Halted { checkpoints } => {
                        CheckpointOutcome::Halted { checkpoints }
                    }
                },
                events: None,
            })
        }),
        FrontEndKind::Sched => {
            let shape = header.sched.ok_or(Error::Snapshot(SnapError::Malformed {
                what: "scheduler snapshot lacks its geometry".to_owned(),
            }))?;
            let sched_config = shape.to_config()?;
            with_policy!(header.policy, experiment.plan(), |p| {
                let mut engine = Scheduler::new(sched_config, p)?;
                let cursor = engine.restore_state(&mut dec)?;
                if header.traced {
                    let mut recorder = Recorder::new(
                        &header.benchmark,
                        header.policy.name(),
                        sched_config.rows_per_bank(),
                    );
                    recorder.restore_obs(&mut dec)?;
                    let outcome = drive_sched(
                        &mut engine,
                        trace,
                        &header,
                        cont,
                        next_stop,
                        0,
                        Some(cursor),
                        &mut recorder,
                    )?;
                    let (outcome, events) = match outcome {
                        SchedOutcome::Completed(s) => (
                            CheckpointOutcome::Completed(ResumedStats::Sched(s)),
                            Some(recorder.finish()),
                        ),
                        SchedOutcome::Halted { checkpoints } => {
                            (CheckpointOutcome::Halted { checkpoints }, None)
                        }
                    };
                    Ok(ResumeReport {
                        front_end: header.front_end,
                        benchmark: header.benchmark.clone(),
                        policy: header.policy,
                        outcome,
                        events,
                    })
                } else {
                    let outcome = drive_sched(
                        &mut engine,
                        trace,
                        &header,
                        cont,
                        next_stop,
                        0,
                        Some(cursor),
                        &mut NullObserver,
                    )?;
                    Ok(ResumeReport {
                        front_end: header.front_end,
                        benchmark: header.benchmark.clone(),
                        policy: header.policy,
                        outcome: outcome.map_stats().map_resumed(),
                        events: None,
                    })
                }
            })
        }
    }
}

impl CheckpointOutcome<SchedStats> {
    fn map_resumed(self) -> CheckpointOutcome<ResumedStats> {
        match self {
            CheckpointOutcome::Completed(s) => CheckpointOutcome::Completed(ResumedStats::Sched(s)),
            CheckpointOutcome::Halted { checkpoints } => CheckpointOutcome::Halted { checkpoints },
        }
    }
}

/// A matrix-level manifest for [`Experiment::compare_all`]-style sweeps:
/// completed (benchmark × policy) cells are persisted atomically after
/// every benchmark group, so an interrupted sweep resumes by re-running
/// only the missing cells. The coarse granularity deliberately sidesteps
/// engine-state capture for guarded/faulted runs (see DESIGN.md §12).
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixManifest {
    config: ExperimentConfig,
    policies: Vec<PolicyKind>,
    cells: Vec<MatrixCell>,
}

impl vrl_snap::Snapshot for MatrixCell {
    fn save(&self, enc: &mut Encoder) {
        self.benchmark.save(enc);
        self.policy.save(enc);
        self.stats.save(enc);
    }

    fn load(dec: &mut Decoder<'_>) -> Result<Self, SnapError> {
        Ok(MatrixCell {
            benchmark: String::load(dec)?,
            policy: PolicyKind::load(dec)?,
            stats: SimStats::load(dec)?,
        })
    }
}

impl vrl_snap::Snapshot for MatrixManifest {
    fn save(&self, enc: &mut Encoder) {
        self.config.save(enc);
        self.policies.save(enc);
        self.cells.save(enc);
    }

    fn load(dec: &mut Decoder<'_>) -> Result<Self, SnapError> {
        Ok(MatrixManifest {
            config: ExperimentConfig::load(dec)?,
            policies: Vec::<PolicyKind>::load(dec)?,
            cells: Vec::<MatrixCell>::load(dec)?,
        })
    }
}

impl MatrixManifest {
    /// Completed cells, in completion order (benchmark-major).
    pub fn cells(&self) -> &[MatrixCell] {
        &self.cells
    }
}

impl Experiment {
    /// Runs the (benchmark × policy) matrix with a crash-consistent
    /// manifest at `path`: after each benchmark's group of cells the
    /// manifest is atomically rewritten, and a re-run against an
    /// existing manifest re-simulates only the missing cells. Returns
    /// the full matrix in benchmark-major order, bit-identical to
    /// [`Experiment::run_matrix_with`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::ResumeMismatch`] if the manifest belongs to a
    /// different configuration or policy list, [`Error::Snapshot`] for
    /// a corrupt manifest, and propagates simulation errors.
    pub fn run_matrix_manifested(
        &self,
        cfg: &vrl_exec::ExecConfig,
        policies: &[PolicyKind],
        path: &Path,
    ) -> Result<Vec<MatrixCell>, Error> {
        let mut manifest = if path.exists() {
            let bytes = vrl_snap::read_file(path)?;
            let payload = vrl_snap::open(&bytes)?;
            let manifest = MatrixManifest::load(&mut Decoder::new(payload))?;
            if manifest.config != *self.config() {
                return Err(Error::ResumeMismatch {
                    what: "manifest experiment configuration differs".to_owned(),
                });
            }
            if manifest.policies != policies {
                return Err(Error::ResumeMismatch {
                    what: "manifest policy list differs".to_owned(),
                });
            }
            manifest
        } else {
            MatrixManifest {
                config: *self.config(),
                policies: policies.to_vec(),
                cells: Vec::new(),
            }
        };
        let done: std::collections::HashSet<(String, PolicyKind)> = manifest
            .cells
            .iter()
            .map(|c| (c.benchmark.clone(), c.policy))
            .collect();
        for benchmark in vrl_trace::WorkloadSpec::BENCHMARKS {
            let missing: Vec<PolicyKind> = policies
                .iter()
                .copied()
                .filter(|&k| !done.contains(&(benchmark.to_owned(), k)))
                .collect();
            if missing.is_empty() {
                continue;
            }
            let jobs: Vec<(&str, PolicyKind)> = missing.iter().map(|&k| (benchmark, k)).collect();
            let cells = vrl_exec::map_ordered(cfg, &jobs, |_, &(benchmark, kind)| {
                self.run_policy(kind, benchmark).map(|stats| MatrixCell {
                    benchmark: benchmark.to_owned(),
                    policy: kind,
                    stats,
                })
            })
            .map_err(Error::from)?;
            manifest.cells.extend(cells);
            let mut enc = Encoder::new();
            manifest.save(&mut enc);
            let sealed = vrl_snap::seal(&enc.into_bytes());
            vrl_snap::write_atomic(path, &sealed)?;
        }
        // Return benchmark-major regardless of completion order.
        let mut ordered = Vec::with_capacity(manifest.cells.len());
        for benchmark in vrl_trace::WorkloadSpec::BENCHMARKS {
            for &kind in policies {
                let cell = manifest
                    .cells
                    .iter()
                    .find(|c| c.benchmark == benchmark && c.policy == kind)
                    .ok_or_else(|| Error::ResumeMismatch {
                        what: format!("manifest is missing {benchmark}/{}", kind.name()),
                    })?;
                ordered.push(cell.clone());
            }
        }
        Ok(ordered)
    }
}
