//! `vrl` — command-line front end to the VRL-DRAM model and simulator.
//!
//! ```text
//! vrl model                         # technology + refresh-latency summary
//! vrl mprsf <retention_ms> [period_ms]
//! vrl plan [--rows N] [--seed S] [--nbits B]
//! vrl simulate <benchmark> [--rows N] [--duration-ms D] [--policy P]
//! vrl compare [--rows N] [--duration-ms D] [--threads T]
//! vrl sched <benchmark> [--rows N] [--banks B] [--duration-ms D]
//!           [--policy P] [--no-parallel]
//! vrl netlist <equalization|charge-sharing|sense-restore>
//! ```
//!
//! `compare` fans the (benchmark × policy) matrix across the `vrl-exec`
//! worker pool; `--threads` overrides the `VRL_THREADS` environment
//! variable, which overrides the machine's available parallelism.

use std::process::ExitCode;

use vrl_circuit::model::AnalyticalModel;
use vrl_circuit::tech::{BankGeometry, Technology};
use vrl_circuit::trfc::{CycleBudget, RefreshKind};
use vrl_dram::experiment::{Experiment, ExperimentConfig, PolicyKind};
use vrl_dram::mprsf::{Mprsf, MprsfCalculator};
use vrl_dram::plan::RefreshPlan;
use vrl_retention::binning::RefreshBin;
use vrl_retention::distribution::RetentionDistribution;
use vrl_retention::profile::BankProfile;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    flag_value(args, flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn cmd_model() -> ExitCode {
    let tech = Technology::n90();
    let model = AnalyticalModel::new(tech);
    println!("technology: 90 nm (Vdd = {} V)", model.technology().vdd);
    println!("τ_full    = {} cycles", CycleBudget::FULL.total());
    println!("τ_partial = {} cycles", CycleBudget::PARTIAL.total());
    println!("sensing sub-phases: {} cycles", model.sensing_cycles());
    println!(
        "full-refresh charge level: {:.1}% of Vdd",
        model.full_charge_fraction() * 100.0
    );
    println!(
        "partial-refresh charge level (from full): {:.1}% of Vdd",
        model.partial_charge_fraction() * 100.0
    );
    println!(
        "sense threshold θ: {:.1}% of Vdd",
        model.sense_threshold() * 100.0
    );
    println!(
        "95% of charge restored by {:.1}% of tRFC",
        model.time_fraction_to_charge_fraction(0.95) * 100.0
    );
    ExitCode::SUCCESS
}

fn cmd_mprsf(args: &[String]) -> ExitCode {
    let Some(retention): Option<f64> = args.first().and_then(|v| v.parse().ok()) else {
        eprintln!("usage: vrl mprsf <retention_ms> [period_ms]");
        return ExitCode::FAILURE;
    };
    let model = AnalyticalModel::new(Technology::n90());
    let calc = MprsfCalculator::new(&model, 0.0);
    let period = args
        .get(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| RefreshBin::for_retention(retention).period_ms());
    if period > retention {
        eprintln!("error: refresh period {period} ms exceeds retention {retention} ms");
        return ExitCode::FAILURE;
    }
    match calc.mprsf(retention, period) {
        Mprsf::Finite(m) => println!(
            "retention {retention} ms @ {period} ms period: MPRSF = {m} \
             (schedule: full + {m} partial refreshes)"
        ),
        Mprsf::Unbounded => println!(
            "retention {retention} ms @ {period} ms period: MPRSF unbounded \
             (saturates at the counter width)"
        ),
    }
    ExitCode::SUCCESS
}

fn cmd_plan(args: &[String]) -> ExitCode {
    let rows: usize = flag_parse(args, "--rows", 8192);
    let seed: u64 = flag_parse(args, "--seed", 42);
    let nbits: u32 = flag_parse(args, "--nbits", 2);
    let model = AnalyticalModel::new(Technology::n90());
    let profile = BankProfile::generate(&RetentionDistribution::liu_et_al(), rows, 32, seed);
    let plan = RefreshPlan::build(&model, &profile, nbits, 0.0);
    println!("bank: {rows} rows, seed {seed}, nbits {nbits}");
    for bin in RefreshBin::ALL {
        println!("  {bin}: {} rows", plan.bins().count(bin));
    }
    println!("MPRSF histogram: {:?}", plan.mprsf_histogram());
    println!(
        "mean refresh latency: {:.2} cycles (RAIDR: {})",
        plan.mean_refresh_cycles(
            RefreshKind::Full.cycles() as u64,
            RefreshKind::Partial.cycles() as u64
        ),
        RefreshKind::Full.cycles()
    );
    println!(
        "analytic VRL overhead vs RAIDR: {:.1}%",
        (vrl_dram::overhead::vrl_normalized(&plan, 19, 11) - 1.0) * 100.0
    );
    ExitCode::SUCCESS
}

fn cmd_simulate(args: &[String]) -> ExitCode {
    let Some(benchmark) = args.first().filter(|a| !a.starts_with("--")).cloned() else {
        eprintln!("usage: vrl simulate <benchmark> [--rows N] [--duration-ms D] [--policy P]");
        eprintln!(
            "benchmarks: {}",
            vrl_trace::WorkloadSpec::BENCHMARKS.join(", ")
        );
        return ExitCode::FAILURE;
    };
    let rows: u32 = flag_parse(args, "--rows", 8192);
    let duration_ms: f64 = flag_parse(args, "--duration-ms", 512.0);
    let policy_name = flag_value(args, "--policy").unwrap_or_else(|| "all".to_owned());
    let experiment = Experiment::new(ExperimentConfig {
        rows,
        duration_ms,
        ..Default::default()
    });
    let kinds: Vec<PolicyKind> = match policy_name.as_str() {
        "all" => PolicyKind::ALL.to_vec(),
        name => match PolicyKind::ALL.iter().find(|k| k.name() == name) {
            Some(k) => vec![*k],
            None => {
                eprintln!("unknown policy '{name}' (auto, raidr, vrl, vrl-access, all)");
                return ExitCode::FAILURE;
            }
        },
    };
    for kind in kinds {
        match experiment.run_policy(kind, &benchmark) {
            Ok(stats) => println!(
                "{:>10}: {:>10} refresh-busy cycles, {:>8} full, {:>8} partial, \
                 {:>10} stall cycles",
                kind.name(),
                stats.refresh_busy_cycles,
                stats.full_refreshes,
                stats.partial_refreshes,
                stats.stall_cycles
            ),
            Err(err) => {
                eprintln!("{err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_compare(args: &[String]) -> ExitCode {
    let rows: u32 = flag_parse(args, "--rows", 8192);
    let duration_ms: f64 = flag_parse(args, "--duration-ms", 512.0);
    let experiment = Experiment::new(ExperimentConfig {
        rows,
        duration_ms,
        ..Default::default()
    });
    // --threads beats VRL_THREADS beats available parallelism.
    let exec = match flag_value(args, "--threads").map(|v| v.parse::<usize>()) {
        Some(Ok(n)) if n > 0 => vrl_exec::ExecConfig::new(n),
        Some(_) => {
            eprintln!("error: --threads takes a positive integer");
            return ExitCode::FAILURE;
        }
        None => vrl_exec::ExecConfig::from_env(),
    };
    println!(
        "bank: {rows} rows, {duration_ms} ms simulated, {} workers",
        exec.workers
    );
    let comparison = match experiment.compare_all_with(&exec) {
        Ok(rows) => rows,
        Err(err) => {
            eprintln!("{err}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{:>14} {:>8} {:>8} {:>12}",
        "benchmark", "RAIDR", "VRL", "VRL-Access"
    );
    for row in &comparison {
        println!(
            "{:>14} {:>8.3} {:>8.3} {:>12.3}",
            row.benchmark, 1.0, row.vrl_normalized, row.vrl_access_normalized
        );
    }
    ExitCode::SUCCESS
}

fn cmd_sched(args: &[String]) -> ExitCode {
    let Some(benchmark) = args.first().filter(|a| !a.starts_with("--")).cloned() else {
        eprintln!(
            "usage: vrl sched <benchmark> [--rows N] [--banks B] [--duration-ms D] \
             [--policy P] [--no-parallel]"
        );
        eprintln!(
            "benchmarks: {}",
            vrl_trace::WorkloadSpec::BENCHMARKS.join(", ")
        );
        return ExitCode::FAILURE;
    };
    let rows: u32 = flag_parse(args, "--rows", 8192);
    let banks: u32 = flag_parse(args, "--banks", 8);
    let duration_ms: f64 = flag_parse(args, "--duration-ms", 512.0);
    let parallel = !args.iter().any(|a| a == "--no-parallel");
    let policy_name = flag_value(args, "--policy").unwrap_or_else(|| "all".to_owned());
    let kinds: Vec<PolicyKind> = match policy_name.as_str() {
        "all" => PolicyKind::ALL.to_vec(),
        name => match PolicyKind::ALL.iter().find(|k| k.name() == name) {
            Some(k) => vec![*k],
            None => {
                eprintln!("unknown policy '{name}' (auto, raidr, vrl, vrl-access, all)");
                return ExitCode::FAILURE;
            }
        },
    };
    let experiment = Experiment::new(ExperimentConfig {
        rows,
        duration_ms,
        ..Default::default()
    });
    let sched = match experiment.sched_config(banks) {
        Ok(cfg) => cfg.with_parallelism(parallel),
        Err(err) => {
            eprintln!("{err}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "rank: {banks} banks × {} rows, {duration_ms} ms simulated, \
         refresh parallelization {}",
        sched.rows_per_bank(),
        if parallel { "on" } else { "off" }
    );
    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>10} {:>12} {:>8} {:>8}",
        "policy",
        "refresh-busy",
        "blocked",
        "postponed",
        "pulled-in",
        "stall",
        "p50 lat",
        "p99 lat"
    );
    for kind in kinds {
        match experiment.run_scheduled(kind, &benchmark, sched) {
            Ok(stats) => println!(
                "{:>10} {:>12} {:>12} {:>10} {:>10} {:>12} {:>8} {:>8}",
                kind.name(),
                stats.sim.refresh_busy_cycles,
                stats.refresh_blocked_cycles,
                stats.sim.postponed_refreshes,
                stats.pulled_in_refreshes,
                stats.sim.stall_cycles,
                stats.read_latency.quantile(0.5),
                stats.read_latency.quantile(0.99),
            ),
            Err(err) => {
                eprintln!("{err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_netlist(args: &[String]) -> ExitCode {
    let which = args.first().map(String::as_str).unwrap_or("equalization");
    let params = Technology::n90().to_spice_params(BankGeometry::operational_segment());
    let deck = match which {
        "equalization" => {
            let (ckt, _) = vrl_spice::circuits::equalization_circuit(&params, 1e-12);
            vrl_spice::netlist_io::to_netlist_string(&ckt, "Figure 2a — equalization")
        }
        "charge-sharing" => {
            let (ckt, _) =
                vrl_spice::circuits::charge_sharing_array(&params, &[false, true, false], 1e-12);
            vrl_spice::netlist_io::to_netlist_string(&ckt, "Figures 2b/2c — coupled charge sharing")
        }
        "sense-restore" => {
            let (ckt, _) = vrl_spice::circuits::sense_restore_circuit(
                &params,
                0.55,
                vrl_spice::circuits::SenseTiming::default(),
            );
            vrl_spice::netlist_io::to_netlist_string(&ckt, "Figure 2d — sense and restore")
        }
        other => {
            eprintln!("unknown circuit '{other}' (equalization, charge-sharing, sense-restore)");
            return ExitCode::FAILURE;
        }
    };
    print!("{deck}");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("model") => cmd_model(),
        Some("mprsf") => cmd_mprsf(&args[1..]),
        Some("plan") => cmd_plan(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("sched") => cmd_sched(&args[1..]),
        Some("netlist") => cmd_netlist(&args[1..]),
        _ => {
            eprintln!("vrl — the VRL-DRAM analytical model and simulator\n");
            eprintln!("usage:");
            eprintln!("  vrl model");
            eprintln!("  vrl mprsf <retention_ms> [period_ms]");
            eprintln!("  vrl plan [--rows N] [--seed S] [--nbits B]");
            eprintln!("  vrl simulate <benchmark> [--rows N] [--duration-ms D] [--policy P]");
            eprintln!("  vrl compare [--rows N] [--duration-ms D] [--threads T]");
            eprintln!(
                "  vrl sched <benchmark> [--rows N] [--banks B] [--duration-ms D] \
                 [--policy P] [--no-parallel]"
            );
            eprintln!("  vrl netlist <equalization|charge-sharing|sense-restore>");
            ExitCode::FAILURE
        }
    }
}
