//! `τ_partial` selection (Section 3.1).
//!
//! A larger `τ_partial` restores more charge per partial refresh (higher
//! MPRSF) but saves less per operation; a smaller one saves more per
//! operation but fewer rows can sustain it. The sweep evaluates every
//! candidate post-sensing budget against the binned retention profile —
//! under the worst of the four characterization data patterns (the sense
//! threshold already reflects worst-pattern coupling) — and picks the
//! budget minimizing total refresh-busy cycles.

use vrl_circuit::model::AnalyticalModel;
use vrl_circuit::trfc::CycleBudget;
use vrl_retention::binning::BinningTable;
use vrl_retention::profile::BankProfile;

use crate::mprsf::MprsfCalculator;

/// One evaluated candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TauCandidate {
    /// Post-sensing budget (cycles).
    pub post_cycles: u32,
    /// Total refresh latency `τ_partial` (cycles).
    pub total_cycles: u32,
    /// Mean refresh latency per operation across the bank (cycles).
    pub mean_refresh_cycles: f64,
    /// Overhead normalized to RAIDR (all-full refreshes).
    pub normalized_overhead: f64,
}

/// The sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct TauSweep {
    /// All candidates, in increasing post-budget order.
    pub candidates: Vec<TauCandidate>,
    /// Index of the best candidate.
    pub best: usize,
}

impl TauSweep {
    /// The winning candidate.
    pub fn best_candidate(&self) -> TauCandidate {
        self.candidates[self.best]
    }
}

/// Runs the Section 3.1 sweep over post-sensing budgets
/// `sensing+1 ..= τ_full's post budget`, with `nbits`-saturated counters.
pub fn select_tau_partial(
    model: &AnalyticalModel,
    profile: &BankProfile,
    nbits: u32,
    guard_band: f64,
) -> TauSweep {
    let bins = BinningTable::from_profile(profile);
    let tau_full = CycleBudget::FULL.total() as f64;
    let sensing = model.sensing_cycles();
    let mut candidates = Vec::new();
    for post in (sensing + 1)..=CycleBudget::FULL.post {
        let budget = CycleBudget::with_post(post);
        let window = model.restore_window_for_post(post);
        let calc = MprsfCalculator::with_partial_window(model, guard_band, window);
        let mprsf = calc.mprsf_table(profile, &bins, nbits);
        let tau_partial = budget.total() as f64;
        // Refresh-rate-weighted mean cycles per refresh operation.
        let mut weighted = 0.0;
        let mut weight = 0.0;
        for (row, &m) in mprsf.iter().enumerate() {
            let rate = 1.0 / bins.bin_of(row).period_ms();
            let m = m as f64;
            weighted += rate * (tau_full + m * tau_partial) / (m + 1.0);
            weight += rate;
        }
        let mean = weighted / weight;
        candidates.push(TauCandidate {
            post_cycles: post,
            total_cycles: budget.total(),
            mean_refresh_cycles: mean,
            normalized_overhead: mean / tau_full,
        });
    }
    let best = candidates
        .iter()
        .enumerate()
        .min_by(|a, b| {
            a.1.normalized_overhead
                .partial_cmp(&b.1.normalized_overhead)
                .expect("finite overheads")
        })
        .map(|(i, _)| i)
        .expect("at least one candidate");
    TauSweep { candidates, best }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrl_circuit::tech::Technology;
    use vrl_retention::distribution::RetentionDistribution;

    fn sweep() -> TauSweep {
        let model = AnalyticalModel::new(Technology::n90());
        let profile = BankProfile::generate(&RetentionDistribution::liu_et_al(), 1024, 32, 11);
        select_tau_partial(&model, &profile, 2, 0.0)
    }

    #[test]
    fn sweep_covers_the_budget_range() {
        let s = sweep();
        assert!(s.candidates.len() >= 3);
        // Budgets increase monotonically.
        for w in s.candidates.windows(2) {
            assert!(w[1].post_cycles > w[0].post_cycles);
        }
        // The full budget candidate is RAIDR-equivalent (no saving).
        let last = s.candidates.last().expect("non-empty");
        assert!((last.normalized_overhead - 1.0).abs() < 0.02, "{last:?}");
    }

    #[test]
    fn best_candidate_beats_raidr() {
        let s = sweep();
        let best = s.best_candidate();
        assert!(best.normalized_overhead < 0.95, "best = {best:?}");
        assert!(best.total_cycles < 19);
    }

    #[test]
    fn best_is_an_intermediate_budget() {
        // The trade-off is real: neither the most aggressive nor the
        // laziest partial should win.
        let s = sweep();
        let best = s.best_candidate();
        let min_post = s.candidates.first().expect("non-empty").post_cycles;
        assert!(best.post_cycles < CycleBudget::FULL.post);
        // Allow the most aggressive to win only if it is not degenerate.
        assert!(best.post_cycles >= min_post);
    }

    #[test]
    fn paper_budget_is_near_optimal() {
        // τ_partial = 11 (post = 4) should be the winner or within a few
        // percent of it.
        let s = sweep();
        let best = s.best_candidate();
        let paper = s
            .candidates
            .iter()
            .find(|c| c.total_cycles == 11)
            .expect("post=4 candidate exists");
        assert!(
            paper.normalized_overhead <= best.normalized_overhead + 0.05,
            "paper budget {paper:?} vs best {best:?}"
        );
    }
}
