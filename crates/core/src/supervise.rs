//! Supervised matrix execution: the bridge between the `vrl-exec`
//! [`Supervisor`] and the observability layer.
//!
//! [`vrl_exec::map_supervised`] retries panicking jobs with recorded
//! (never slept) deterministic backoffs, quarantines jobs that exhaust
//! their retry or virtual-deadline budget, and degrades the batch to
//! serial execution after repeated pool failures — all as typed
//! [`SupervisorEvent`]s and [`SupervisorCounters`]. This module turns
//! those into the workspace's observability vocabulary:
//!
//! * [`supervisor_events_to_obs`] maps each supervision decision onto a
//!   typed [`vrl_obs::Event`] (`ExecRetry`, `ExecDeadline`,
//!   `ExecQuarantine`, `ExecDegraded`), mergeable with engine event
//!   streams and exportable as a Chrome trace,
//! * [`supervisor_metrics`] exposes the counters as an `exec.*`
//!   [`MetricsSnapshot`] (the same shape the CLI and bench harness
//!   already write to disk),
//! * [`Experiment::run_jobs_supervised`] /
//!   [`Experiment::run_matrix_supervised`] run (benchmark × policy)
//!   jobs under a supervision policy, so a single poisoned cell is
//!   quarantined with its typed error while its siblings complete.
//!
//! Supervision is virtual-time deterministic, so a supervised matrix —
//! including every event and counter — is bit-identical across pool
//! shapes.

use vrl_exec::{ExecConfig, Quarantined, Supervisor, SupervisorCounters, SupervisorEvent};
use vrl_obs::recorder::NO_ROW;
use vrl_obs::{Event, EventKind, MetricsRegistry, MetricsSnapshot};
use vrl_trace::WorkloadSpec;

use crate::error::Error;
use crate::experiment::{Experiment, MatrixCell, PolicyKind};

/// Maps supervision decisions onto typed observability events.
///
/// Exec events carry the job index in `cycle` (they have no simulated
/// time) and the row-less sentinel in `row`; the batch-level
/// [`SupervisorEvent::Degraded`] decision has no job and reports cycle
/// 0. `seq` is the event's position in the supervision log, so merging
/// with engine streams keeps the supervision order stable.
pub fn supervisor_events_to_obs(events: &[SupervisorEvent]) -> Vec<Event> {
    events
        .iter()
        .enumerate()
        .map(|(seq, ev)| {
            let (job, kind) = match *ev {
                SupervisorEvent::Retry {
                    job,
                    attempt,
                    backoff,
                } => (
                    job,
                    EventKind::ExecRetry {
                        attempt,
                        backoff: u32::try_from(backoff).unwrap_or(u32::MAX),
                    },
                ),
                SupervisorEvent::DeadlineExceeded { job, .. } => (job, EventKind::ExecDeadline),
                SupervisorEvent::Quarantined {
                    job,
                    attempts,
                    panicked,
                } => (job, EventKind::ExecQuarantine { attempts, panicked }),
                SupervisorEvent::Degraded { failures } => (0, EventKind::ExecDegraded { failures }),
            };
            Event {
                seq: seq as u64,
                cycle: job as u64,
                bank: 0,
                row: NO_ROW,
                kind,
            }
        })
        .collect()
}

/// Exposes one batch's supervision counters as `exec.*` metrics, in the
/// same [`MetricsSnapshot`] shape the harness writes to disk.
pub fn supervisor_metrics(counters: &SupervisorCounters) -> MetricsSnapshot {
    let mut registry = MetricsRegistry::new();
    for (name, value) in [
        ("exec.retries", counters.retries),
        ("exec.quarantined", counters.quarantined),
        ("exec.deadline_exceeded", counters.deadline_exceeded),
        ("exec.panics", counters.panics),
        ("exec.degraded", counters.degraded),
    ] {
        let id = registry.counter(name);
        registry.add(id, value);
    }
    registry.snapshot()
}

/// A supervised (benchmark × policy) run: per-job outcomes plus the
/// supervision record in observability vocabulary.
#[derive(Debug)]
pub struct SupervisedMatrix {
    /// One entry per job in job order; quarantined jobs carry their
    /// typed failure in place while their siblings' cells are real.
    pub cells: Vec<Result<MatrixCell, Quarantined<Error>>>,
    /// The supervision log as typed observability events
    /// ([`supervisor_events_to_obs`]).
    pub events: Vec<Event>,
    /// Aggregate supervision counters for the batch.
    pub counters: SupervisorCounters,
    /// The counters as `exec.*` metrics ([`supervisor_metrics`]).
    pub metrics: MetricsSnapshot,
    /// Whether the batch degraded to serial execution.
    pub degraded: bool,
}

impl Experiment {
    /// Runs explicit (benchmark, policy) jobs under a supervision
    /// policy. A job whose benchmark is unknown (or that otherwise
    /// fails with a typed error) is quarantined immediately — typed
    /// errors are deterministic domain failures, not flaky
    /// infrastructure — while panicking jobs are retried per `sup` and
    /// every sibling runs to completion.
    pub fn run_jobs_supervised(
        &self,
        cfg: &ExecConfig,
        sup: &Supervisor,
        jobs: &[(String, PolicyKind)],
    ) -> SupervisedMatrix {
        let batch = vrl_exec::map_supervised(cfg, sup, jobs, |_, (benchmark, kind)| {
            self.run_policy(*kind, benchmark).map(|stats| MatrixCell {
                benchmark: benchmark.clone(),
                policy: *kind,
                stats,
            })
        });
        SupervisedMatrix {
            events: supervisor_events_to_obs(&batch.events),
            metrics: supervisor_metrics(&batch.counters),
            counters: batch.counters,
            degraded: batch.degraded,
            cells: batch.results,
        }
    }

    /// Runs the full (benchmark × policy) matrix under a supervision
    /// policy, benchmark-major like
    /// [`Experiment::run_matrix_with`](Experiment), with per-job
    /// quarantine instead of first-failure abort.
    pub fn run_matrix_supervised(
        &self,
        cfg: &ExecConfig,
        sup: &Supervisor,
        policies: &[PolicyKind],
    ) -> SupervisedMatrix {
        let jobs: Vec<(String, PolicyKind)> = WorkloadSpec::BENCHMARKS
            .iter()
            .flat_map(|b| policies.iter().map(move |&k| ((*b).to_owned(), k)))
            .collect();
        self.run_jobs_supervised(cfg, sup, &jobs)
    }
}
