//! Variable-retention-time (VRT) hazard analysis and the VRT-aware plan.
//!
//! VRL-DRAM (like RAIDR) assumes a *static* retention profile, but real
//! cells occasionally toggle into a weaker retention state (the hazard
//! AVATAR \[33\] addresses). This module quantifies the exposure and
//! provides the defensive plan:
//!
//! * [`VrtScenario`] — a population of two-state VRT processes driving
//!   time-varying retention during a simulation,
//! * [`run_under_vrt`] — replays a refresh plan against the scenario with
//!   the integrity checker tracking the *actual* (toggling) retention,
//! * [`RefreshPlan`] built from [`worst_case_profile`] — the VRT-aware
//!   plan that assumes every suspect row sits in its weak state.
//!
//! The test suite demonstrates the paper-level takeaway: a plan built on
//! observed (strong-state) retention can violate integrity once cells
//! toggle, while the worst-case plan stays safe at a modest overhead
//! cost.

use vrl_circuit::model::AnalyticalModel;
use vrl_dram_sim::integrity::IntegrityChecker;
use vrl_dram_sim::sim::{SimConfig, Simulator};
use vrl_dram_sim::timing::{RefreshLatency, TimingParams};
use vrl_retention::profile::BankProfile;
use vrl_retention::vrt::VrtProcess;

use crate::physics::ModelPhysics;
use crate::plan::RefreshPlan;

/// A VRT scenario: one process per row (rows without a process entry are
/// stable).
#[derive(Debug, Clone)]
pub struct VrtScenario {
    /// Per-row VRT processes; `None` = stable row.
    pub processes: Vec<Option<VrtProcess>>,
    /// Interval between VRT observation windows (ms).
    pub step_ms: f64,
}

impl VrtScenario {
    /// Builds a scenario where every `stride`-th row of `profile` is a
    /// VRT cell whose weak-state retention is `weak_factor` of its
    /// strong-state retention.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < weak_factor < 1`, `stride > 0`, and
    /// `step_ms > 0`.
    pub fn sparse(
        profile: &BankProfile,
        stride: usize,
        weak_factor: f64,
        toggle_probability: f64,
        step_ms: f64,
        seed: u64,
    ) -> Self {
        assert!(
            weak_factor > 0.0 && weak_factor < 1.0,
            "weak factor in (0,1)"
        );
        assert!(stride > 0, "stride must be positive");
        assert!(step_ms > 0.0, "step must be positive");
        let processes = profile
            .iter()
            .enumerate()
            .map(|(i, row)| {
                // Weak states below the worst-case refresh period (64 ms)
                // cannot be saved by any refresh schedule — real systems
                // handle those cells with ECC or remapping, so the
                // scenario floors the weak state there. Rows too weak to
                // have a meaningful two-state process stay stable.
                let weak = (row.weakest_ms * weak_factor).max(64.0);
                if i % stride == 0 && weak < row.weakest_ms {
                    Some(VrtProcess::new(
                        row.weakest_ms,
                        weak,
                        toggle_probability,
                        seed.wrapping_add(i as u64),
                    ))
                } else {
                    None
                }
            })
            .collect();
        VrtScenario { processes, step_ms }
    }

    /// Number of VRT-affected rows.
    pub fn affected_rows(&self) -> usize {
        self.processes.iter().filter(|p| p.is_some()).count()
    }
}

/// The ground-truth profile a VRT-aware planner must assume: every VRT
/// row pinned to its weak-state retention.
pub fn worst_case_profile(profile: &BankProfile, scenario: &VrtScenario) -> BankProfile {
    let rows = profile
        .iter()
        .zip(&scenario.processes)
        .map(|(row, process)| match process {
            Some(p) => p.worst_case_ms(),
            None => row.weakest_ms,
        });
    BankProfile::from_rows(rows, profile.cells_per_row())
}

/// Result of a run under VRT.
#[derive(Debug, Clone, PartialEq)]
pub struct VrtRunResult {
    /// Refresh-busy cycles of the run.
    pub refresh_busy_cycles: u64,
    /// Integrity violations observed.
    pub violations: usize,
    /// VRT state toggles that occurred during the run.
    pub toggles: usize,
}

/// Replays `plan` for `duration_ms` (no traffic) while the scenario's VRT
/// processes toggle row retentions under the integrity checker.
pub fn run_under_vrt(
    model: &AnalyticalModel,
    plan: &RefreshPlan,
    profile: &BankProfile,
    scenario: &VrtScenario,
    duration_ms: f64,
) -> VrtRunResult {
    let mut scenario = scenario.clone();
    let timing = TimingParams::paper_default();
    let retention: Vec<f64> = profile
        .iter()
        .zip(&scenario.processes)
        .map(|(row, p)| p.as_ref().map_or(row.weakest_ms, |p| p.retention_ms()))
        .collect();
    let mut checker = IntegrityChecker::new(ModelPhysics::new(model), timing, retention);
    let mut sim = Simulator::new(SimConfig::with_rows(profile.row_count() as u32), plan.vrl());

    let mut refresh_busy = 0u64;
    let mut toggles = 0usize;
    let steps = (duration_ms / scenario.step_ms).ceil() as usize;
    for step in 1..=steps {
        let until_ms = (step as f64 * scenario.step_ms).min(duration_ms);
        let stats = sim.run_observed(std::iter::empty(), until_ms, &mut checker);
        refresh_busy = stats.refresh_busy_cycles;
        // Advance VRT processes and apply the new retentions.
        let cycle = timing.ms_to_cycles(until_ms);
        for (row, process) in scenario.processes.iter_mut().enumerate() {
            if let Some(p) = process {
                let was_weak = p.is_weak();
                p.step();
                if p.is_weak() != was_weak {
                    toggles += 1;
                    checker.update_retention(row as u32, p.retention_ms(), cycle);
                }
            }
        }
    }
    let _ = RefreshLatency::Full; // (type referenced for doc completeness)
    VrtRunResult {
        refresh_busy_cycles: refresh_busy,
        violations: checker.violations().len(),
        toggles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrl_circuit::tech::Technology;
    use vrl_retention::distribution::RetentionDistribution;

    fn setup() -> (AnalyticalModel, BankProfile, VrtScenario) {
        let model = AnalyticalModel::new(Technology::n90());
        let profile = BankProfile::generate(&RetentionDistribution::liu_et_al(), 128, 32, 3);
        // Aggressive VRT: every 4th row can collapse to 15% of its
        // retention (floored at 64 ms), toggling often.
        let scenario = VrtScenario::sparse(&profile, 4, 0.15, 0.4, 64.0, 7);
        (model, profile, scenario)
    }

    #[test]
    fn scenario_counts_affected_rows() {
        let (_, profile, scenario) = setup();
        assert!(scenario.affected_rows() > 16, "most 4th rows are affected");
        assert!(scenario.affected_rows() <= 32);
        assert_eq!(scenario.processes.len(), profile.row_count());
    }

    #[test]
    fn worst_case_profile_is_conservative() {
        let (_, profile, scenario) = setup();
        let worst = worst_case_profile(&profile, &scenario);
        for (a, b) in profile.iter().zip(worst.iter()) {
            assert!(b.weakest_ms <= a.weakest_ms);
        }
    }

    #[test]
    fn naive_plan_violates_under_vrt() {
        let (model, profile, scenario) = setup();
        let naive = RefreshPlan::build(&model, &profile, 2, 0.0);
        let result = run_under_vrt(&model, &naive, &profile, &scenario, 2048.0);
        assert!(result.toggles > 0, "scenario must actually toggle");
        assert!(
            result.violations > 0,
            "a strong-state plan must lose data once cells collapse"
        );
    }

    #[test]
    fn vrt_aware_plan_stays_safe() {
        let (model, profile, scenario) = setup();
        let worst = worst_case_profile(&profile, &scenario);
        let aware = RefreshPlan::build(&model, &worst, 2, 0.0);
        let result = run_under_vrt(&model, &aware, &profile, &scenario, 2048.0);
        assert_eq!(result.violations, 0, "worst-case planning must be safe");
    }

    #[test]
    fn safety_costs_refresh_cycles() {
        let (model, profile, scenario) = setup();
        let naive = RefreshPlan::build(&model, &profile, 2, 0.0);
        let aware = RefreshPlan::build(&model, &worst_case_profile(&profile, &scenario), 2, 0.0);
        let n = run_under_vrt(&model, &naive, &profile, &scenario, 1024.0);
        let a = run_under_vrt(&model, &aware, &profile, &scenario, 1024.0);
        assert!(
            a.refresh_busy_cycles > n.refresh_busy_cycles,
            "the VRT-aware plan must refresh more: {} vs {}",
            a.refresh_busy_cycles,
            n.refresh_busy_cycles
        );
    }
}
