//! # vrl-dram — Variable Refresh Latency DRAM
//!
//! The primary contribution of *VRL-DRAM: Improving DRAM Performance via
//! Variable Refresh Latency* (Das, Hassan, Mutlu — DAC 2018), built on
//! the substrate crates of this workspace:
//!
//! * [`mprsf`] — computing each row's **mean partial refreshes to sensing
//!   failure** from the analytical circuit model and the retention
//!   profile (Section 3.1),
//! * [`tau`] — selecting the partial-refresh latency `τ_partial` by
//!   sweeping the restore budget across data patterns (Section 3.1),
//! * [`plan`] — turning a profile into the controller state of
//!   Algorithm 1 (binning + saturated MPRSF counters) and into the
//!   simulator's VRL / VRL-Access policies (Section 3.2),
//! * [`physics`] — the charge physics adapter that lets the simulator's
//!   integrity checker verify a plan against the circuit model,
//! * [`overhead`] — closed-form refresh-overhead accounting,
//! * [`experiment`] — the end-to-end harness behind the paper's Figure 4
//!   (trace → simulator → policy → statistics → power), including
//!   fault-injected runs with the optional runtime guard; the full
//!   (benchmark × policy) matrix fans across the `vrl-exec` worker pool
//!   with bit-identical results to the serial path,
//! * [`checkpoint`] — crash-consistent checkpoint/resume: versioned,
//!   checksummed snapshots of a run's full engine state written
//!   atomically on a cycle cadence, resumable bit-identically on every
//!   front end, plus a matrix-level manifest for interrupted sweeps,
//! * [`supervise`] — supervised matrix execution (retry, virtual
//!   deadline, quarantine, graceful degradation) bridged to typed
//!   observability events and `exec.*` metrics,
//! * [`error`] — typed errors for the harness APIs.
//!
//! # Quickstart
//!
//! ```
//! use vrl_dram::experiment::{Experiment, ExperimentConfig};
//!
//! // A small bank keeps the doctest fast; the paper uses 8192 rows.
//! let config = ExperimentConfig { rows: 256, duration_ms: 256.0, ..Default::default() };
//! let experiment = Experiment::new(config);
//! let row = experiment.compare("swaptions").expect("known benchmark");
//! assert!(row.vrl_cycles < row.raidr_cycles, "VRL must beat RAIDR");
//! assert!(row.vrl_access_cycles <= row.vrl_cycles);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod error;
pub mod experiment;
pub mod mprsf;
pub mod overhead;
pub mod physics;
pub mod plan;
pub mod spans;
pub mod supervise;
pub mod tau;
pub mod vrt_adapt;

pub use checkpoint::{
    resume, CheckpointConfig, CheckpointOutcome, FrontEndKind, ResumeReport, ResumedStats,
};
pub use error::Error;
pub use experiment::{
    ComparisonRow, DimmRun, Experiment, ExperimentConfig, FaultedOutcome, MatrixCell, PolicyKind,
};
pub use mprsf::{Mprsf, MprsfCalculator};
pub use plan::RefreshPlan;
pub use supervise::{supervisor_events_to_obs, supervisor_metrics, SupervisedMatrix};

// Re-export the substrate crates so downstream users need one dependency.
pub use vrl_area as area;
pub use vrl_circuit as circuit;
pub use vrl_dram_sim as dram_sim;
pub use vrl_power as power;
pub use vrl_retention as retention;
pub use vrl_spice as spice;
pub use vrl_trace as trace;
