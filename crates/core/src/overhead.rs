//! Closed-form refresh-overhead accounting.
//!
//! For trace-independent policies (AutoRefresh, RAIDR, VRL) the
//! refresh-busy cycles over a time window follow directly from the plan;
//! this module computes them without simulation. The simulator remains
//! the ground truth (and the only way to evaluate VRL-Access), and the
//! test suite cross-checks the two.

use vrl_retention::binning::RefreshBin;

use crate::plan::RefreshPlan;

/// Refresh-busy cycles per `window_ms` under RAIDR (all refreshes full).
pub fn raidr_cycles(plan: &RefreshPlan, window_ms: f64, tau_full: u64) -> f64 {
    RefreshBin::ALL
        .iter()
        .map(|bin| plan.bins().count(*bin) as f64 * (window_ms / bin.period_ms()) * tau_full as f64)
        .sum()
}

/// Refresh-busy cycles per `window_ms` under VRL: each row amortizes
/// `m` partials per full refresh.
pub fn vrl_cycles(plan: &RefreshPlan, window_ms: f64, tau_full: u64, tau_partial: u64) -> f64 {
    plan.mprsf()
        .iter()
        .enumerate()
        .map(|(row, &m)| {
            let period = plan.bins().bin_of(row).period_ms();
            let refreshes = window_ms / period;
            let m = m as f64;
            refreshes * (tau_full as f64 + m * tau_partial as f64) / (m + 1.0)
        })
        .sum()
}

/// Refresh-busy cycles per `window_ms` under fixed-period auto-refresh.
pub fn auto_cycles(rows: usize, window_ms: f64, period_ms: f64, tau_full: u64) -> f64 {
    rows as f64 * (window_ms / period_ms) * tau_full as f64
}

/// VRL's normalized overhead relative to RAIDR (the Figure 4 bar for
/// plain VRL — application-independent).
pub fn vrl_normalized(plan: &RefreshPlan, tau_full: u64, tau_partial: u64) -> f64 {
    let window = 256.0;
    vrl_cycles(plan, window, tau_full, tau_partial) / raidr_cycles(plan, window, tau_full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrl_circuit::model::AnalyticalModel;
    use vrl_circuit::tech::Technology;
    use vrl_retention::distribution::RetentionDistribution;
    use vrl_retention::profile::BankProfile;

    fn plan() -> RefreshPlan {
        let model = AnalyticalModel::new(Technology::n90());
        let profile = BankProfile::generate(&RetentionDistribution::liu_et_al(), 2048, 32, 5);
        RefreshPlan::build(&model, &profile, 2, 0.0)
    }

    #[test]
    fn raidr_beats_auto() {
        let p = plan();
        let auto = auto_cycles(2048, 256.0, 64.0, 19);
        let raidr = raidr_cycles(&p, 256.0, 19);
        assert!(
            raidr < auto,
            "binning must reduce refreshes: {raidr} vs {auto}"
        );
    }

    #[test]
    fn vrl_beats_raidr() {
        let p = plan();
        let ratio = vrl_normalized(&p, 19, 11);
        assert!(ratio < 1.0, "VRL must reduce overhead, ratio = {ratio}");
        // And can never beat the all-partial bound 11/19.
        assert!(ratio > 11.0 / 19.0);
    }

    #[test]
    fn window_scales_linearly() {
        let p = plan();
        let one = raidr_cycles(&p, 256.0, 19);
        let two = raidr_cycles(&p, 512.0, 19);
        assert!((two - 2.0 * one).abs() < 1e-6);
    }

    #[test]
    fn degenerate_all_zero_mprsf_equals_raidr() {
        // If every row has MPRSF 0, VRL degenerates to RAIDR exactly.
        let model = AnalyticalModel::new(Technology::n90());
        // All rows at the bin boundary → MPRSF 0.
        let profile = BankProfile::from_rows(vec![256.0; 64], 32);
        let p = RefreshPlan::build(&model, &profile, 2, 0.0);
        assert!(p.mprsf().iter().all(|&m| m == 0));
        let ratio = vrl_normalized(&p, 19, 11);
        assert!((ratio - 1.0).abs() < 1e-12);
    }
}
