//! Adapter: the analytical circuit model as the simulator's charge
//! physics, so the integrity checker can verify plans end-to-end.

use vrl_circuit::model::AnalyticalModel;
use vrl_circuit::trfc::RefreshKind;
use vrl_dram_sim::integrity::ChargePhysics;
use vrl_dram_sim::timing::RefreshLatency;

/// Charge physics backed by the analytical model (transfer functions
/// pre-sampled for speed).
#[derive(Debug, Clone)]
pub struct ModelPhysics {
    full_level: f64,
    threshold: f64,
    partial_lut: Vec<f64>,
    full_lut: Vec<f64>,
    lo: f64,
}

const LUT_POINTS: usize = 512;

impl ModelPhysics {
    /// Samples the model's refresh transfer functions.
    pub fn new(model: &AnalyticalModel) -> Self {
        let threshold = model.sense_threshold();
        let lo = threshold * 0.5;
        let sample = |kind: RefreshKind| -> Vec<f64> {
            (0..LUT_POINTS)
                .map(|i| {
                    let q = lo + (1.0 - lo) * i as f64 / (LUT_POINTS - 1) as f64;
                    model.fraction_after_refresh(kind, q)
                })
                .collect()
        };
        ModelPhysics {
            full_level: model.full_charge_fraction(),
            threshold,
            partial_lut: sample(RefreshKind::Partial),
            full_lut: sample(RefreshKind::Full),
            lo,
        }
    }

    fn interp(&self, lut: &[f64], start: f64) -> f64 {
        let x = (start.clamp(self.lo, 1.0) - self.lo) / (1.0 - self.lo) * (LUT_POINTS - 1) as f64;
        let i = (x as usize).min(LUT_POINTS - 2);
        let frac = x - i as f64;
        lut[i] * (1.0 - frac) + lut[i + 1] * frac
    }
}

impl ChargePhysics for ModelPhysics {
    fn after_refresh(&self, kind: RefreshLatency, start: f64) -> f64 {
        match kind {
            RefreshLatency::Full => self.interp(&self.full_lut, start),
            RefreshLatency::Partial => self.interp(&self.partial_lut, start),
        }
    }

    fn full_level(&self) -> f64 {
        self.full_level
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrl_circuit::tech::Technology;

    fn physics() -> ModelPhysics {
        ModelPhysics::new(&AnalyticalModel::new(Technology::n90()))
    }

    #[test]
    fn full_refresh_restores_to_full_level() {
        let p = physics();
        let after = p.after_refresh(RefreshLatency::Full, p.threshold());
        assert!((after - p.full_level()).abs() < 0.02, "{after}");
    }

    #[test]
    fn partial_adds_less_than_full() {
        let p = physics();
        let start = 0.7;
        let full = p.after_refresh(RefreshLatency::Full, start);
        let partial = p.after_refresh(RefreshLatency::Partial, start);
        assert!(partial < full);
        assert!(partial > start);
    }

    #[test]
    fn threshold_sits_above_half() {
        let p = physics();
        assert!(p.threshold() > 0.5 && p.threshold() < 0.8);
    }
}
