//! MPRSF: mean partial refreshes to sensing failure (Section 3.1).
//!
//! For a cell with retention `T` refreshed every `P` milliseconds, the
//! MPRSF is the largest `m` such that the schedule
//! `full, partial×m, full, partial×m, …` keeps the cell's charge at or
//! above the sensing threshold at *every* sensing instant. It is found
//! by iterating the refresh transfer function of the analytical model
//! against the leakage law:
//!
//! ```text
//! v₀ = full-refresh level
//! vₖ = partial(vₖ₋₁ · d),   d = decay over P for retention T
//! ```
//!
//! The sequence `vₖ` decreases monotonically toward a fixed point; if the
//! fixed point still senses safely the cell sustains partial refreshes
//! indefinitely ([`Mprsf::Unbounded`]), otherwise the first failing
//! sensing instant bounds `m`.

use std::collections::HashMap;

use vrl_circuit::model::AnalyticalModel;
use vrl_circuit::trfc::RefreshKind;
use vrl_retention::binning::{BinningTable, RefreshBin};
use vrl_retention::leakage::LeakageModel;
use vrl_retention::profile::BankProfile;

/// A row's MPRSF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mprsf {
    /// The row sustains exactly this many partial refreshes between
    /// fulls.
    Finite(u32),
    /// The partial-refresh fixed point is safe: unlimited partials.
    Unbounded,
}

impl Mprsf {
    /// Saturates to an `nbits`-wide counter (`2^nbits − 1`), the hardware
    /// representation of Section 3.2.
    ///
    /// # Panics
    ///
    /// Panics if `nbits` is 0 or exceeds 8.
    pub fn saturate(self, nbits: u32) -> u8 {
        assert!((1..=8).contains(&nbits), "counter width must be 1..=8 bits");
        let cap = ((1u16 << nbits) - 1) as u32;
        match self {
            Mprsf::Finite(m) => m.min(cap) as u8,
            Mprsf::Unbounded => cap as u8,
        }
    }
}

/// MPRSF calculator bound to an analytical model.
///
/// # Example
///
/// ```
/// use vrl_circuit::model::AnalyticalModel;
/// use vrl_circuit::tech::Technology;
/// use vrl_dram::mprsf::{Mprsf, MprsfCalculator};
///
/// let model = AnalyticalModel::new(Technology::n90());
/// let calc = MprsfCalculator::new(&model, 0.0);
/// // A cell at the bin boundary sustains no partial refreshes...
/// assert_eq!(calc.mprsf(256.0, 256.0), Mprsf::Finite(0));
/// // ...while a very strong cell sustains them indefinitely.
/// assert_eq!(calc.mprsf(60_000.0, 256.0), Mprsf::Unbounded);
/// ```
#[derive(Debug, Clone)]
pub struct MprsfCalculator {
    full_level: f64,
    threshold: f64,
    leakage: LeakageModel,
    /// Partial-refresh transfer function sampled on a charge grid (for
    /// speed: the nonlinear restore integration is ~400 steps per call).
    partial_lut: Vec<f64>,
    lut_lo: f64,
    lut_hi: f64,
    /// Additional charge margin required at every sensing instant.
    guard_band: f64,
    /// Iteration cap: sequences that survive this long without reaching
    /// a fixed point are treated as unbounded (far beyond any counter).
    max_iterations: u32,
}

/// Grid size of the partial-transfer lookup table.
const LUT_POINTS: usize = 512;

impl MprsfCalculator {
    /// Builds a calculator from the analytical model with a charge guard
    /// band (fraction of `Vdd`; 0 disables it), using the standard
    /// `τ_partial` restore window.
    ///
    /// # Panics
    ///
    /// Panics if `guard_band` is negative or implausibly large (≥ 0.2).
    pub fn new(model: &AnalyticalModel, guard_band: f64) -> Self {
        Self::with_partial_window(
            model,
            guard_band,
            model.restore_window(RefreshKind::Partial),
        )
    }

    /// Like [`MprsfCalculator::new`] with an explicit partial-refresh
    /// restore window (seconds) — the knob the `τ_partial` selection
    /// sweep of Section 3.1 turns.
    ///
    /// # Panics
    ///
    /// Panics if `guard_band` is out of range or the window is negative.
    pub fn with_partial_window(model: &AnalyticalModel, guard_band: f64, window: f64) -> Self {
        assert!((0.0..0.2).contains(&guard_band), "guard band out of range");
        assert!(window >= 0.0, "restore window must be non-negative");
        let full_level = model.full_charge_fraction();
        let threshold = model.sense_threshold();
        let leakage = LeakageModel::new(full_level, threshold);
        let lut_lo = threshold * 0.5;
        let lut_hi = 1.0;
        let partial_lut = (0..LUT_POINTS)
            .map(|i| {
                let q = lut_lo + (lut_hi - lut_lo) * i as f64 / (LUT_POINTS - 1) as f64;
                model.fraction_after_window(window, q)
            })
            .collect();
        MprsfCalculator {
            full_level,
            threshold,
            leakage,
            partial_lut,
            lut_lo,
            lut_hi,
            guard_band,
            max_iterations: 128,
        }
    }

    /// The full-refresh charge level in use.
    pub fn full_level(&self) -> f64 {
        self.full_level
    }

    /// The sensing threshold in use (before the guard band).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Partial-refresh transfer function (interpolated).
    pub fn partial_transfer(&self, start: f64) -> f64 {
        let x = (start.clamp(self.lut_lo, self.lut_hi) - self.lut_lo) / (self.lut_hi - self.lut_lo)
            * (LUT_POINTS - 1) as f64;
        let i = (x as usize).min(LUT_POINTS - 2);
        let frac = x - i as f64;
        self.partial_lut[i] * (1.0 - frac) + self.partial_lut[i + 1] * frac
    }

    /// MPRSF of a cell with `retention_ms` refreshed every `period_ms`.
    ///
    /// # Panics
    ///
    /// Panics if the period exceeds the retention (the binning must
    /// guarantee `period ≤ retention`).
    pub fn mprsf(&self, retention_ms: f64, period_ms: f64) -> Mprsf {
        assert!(
            period_ms <= retention_ms,
            "refresh period {period_ms} exceeds retention {retention_ms}"
        );
        let d = self.leakage.decay_factor(period_ms, retention_ms);
        let floor = self.threshold + self.guard_band;
        let mut v = self.full_level;
        for k in 1..=self.max_iterations {
            let v_pre = v * d;
            if v_pre < floor {
                // Sensing instant k fails: the (k−1)-th refresh must have
                // been the full one, so m = k − 2 partials are safe.
                return Mprsf::Finite(k.saturating_sub(2));
            }
            let v_next = self.partial_transfer(v_pre);
            if (v_next - v).abs() < 1e-9 {
                return Mprsf::Unbounded;
            }
            v = v_next;
        }
        Mprsf::Unbounded
    }

    /// Per-row MPRSF table, saturated to `nbits`, for a profile under a
    /// binning — the direct path: one fixed-point iteration per row.
    ///
    /// [`MprsfCalculator::mprsf_table_memo`] computes the same table in
    /// O(bins) fixed-point iterations; this method remains as the
    /// reference oracle (the memoized path is tested bit-identical to
    /// it).
    ///
    /// # Panics
    ///
    /// Panics if the profile and binning disagree on the row count.
    pub fn mprsf_table(&self, profile: &BankProfile, bins: &BinningTable, nbits: u32) -> Vec<u8> {
        assert_eq!(
            profile.row_count(),
            bins.total_rows(),
            "profile/bins mismatch"
        );
        profile
            .iter()
            .enumerate()
            .map(|(i, row)| {
                self.mprsf(row.weakest_ms, bins.bin_of(i).period_ms())
                    .saturate(nbits)
            })
            .collect()
    }

    /// Per-row MPRSF table via the [`MprsfMemo`]: fixed-point iterations
    /// run once per `(retention bin, period)` key instead of once per
    /// row, and rows are classified by a threshold lookup. Bit-identical
    /// to [`MprsfCalculator::mprsf_table`].
    ///
    /// # Panics
    ///
    /// Panics if the profile and binning disagree on the row count.
    pub fn mprsf_table_memo(
        &self,
        profile: &BankProfile,
        bins: &BinningTable,
        nbits: u32,
    ) -> Vec<u8> {
        assert_eq!(
            profile.row_count(),
            bins.total_rows(),
            "profile/bins mismatch"
        );
        let mut memo = MprsfMemo::new(self, nbits);
        profile
            .iter()
            .enumerate()
            .map(|(i, row)| memo.saturated(bins.bin_of(i), row.weakest_ms))
            .collect()
    }

    /// The retention thresholds at which the saturated MPRSF for
    /// `period_ms` steps: `thresholds[m-1]` is the smallest retention
    /// (as an `f64`, exact to the ULP) whose saturated MPRSF is at
    /// least `m`, or `+∞` if no retention reaches `m`. The saturated
    /// MPRSF of any retention `T ≥ period_ms` is then the number of
    /// thresholds `≤ T`.
    ///
    /// Exactness rests on the monotonicity of the saturated MPRSF in
    /// retention (pinned by tests and by the bit-equality of the
    /// memoized table against the direct one): each threshold is found
    /// by bisecting down to adjacent `f64`s with the exact
    /// [`MprsfCalculator::mprsf`] as the predicate.
    pub fn saturation_thresholds(&self, period_ms: f64, nbits: u32) -> Vec<f64> {
        let cap = Mprsf::Unbounded.saturate(nbits) as u32;
        let value = |t: f64| u32::from(self.mprsf(t, period_ms).saturate(nbits));
        // Beyond this retention everything is effectively unbounded
        // (decay over one period is negligible); used only to bracket.
        let t_cap = (period_ms * 1e6).max(1e9);
        let mut thresholds = Vec::with_capacity(cap as usize);
        let mut lo = period_ms;
        let mut lo_val = value(lo);
        for m in 1..=cap {
            if lo_val >= m {
                thresholds.push(lo);
                continue;
            }
            // Bracket: grow until the value reaches m (or give up).
            let mut hi = (lo * 2.0).max(period_ms * 2.0);
            while hi < t_cap && value(hi) < m {
                hi *= 2.0;
            }
            if value(hi) < m {
                thresholds.push(f64::INFINITY);
                continue;
            }
            // Bit-level bisection: terminates when lo and hi are
            // adjacent floats, making `hi` the exact step point.
            let mut blo = lo;
            let mut bhi = hi;
            while next_up(blo) < bhi {
                let mid = f64::from_bits((blo.to_bits() + bhi.to_bits()) / 2);
                if value(mid) >= m {
                    bhi = mid;
                } else {
                    blo = mid;
                }
            }
            thresholds.push(bhi);
            lo = bhi;
            lo_val = m;
        }
        thresholds
    }
}

/// The smallest `f64` strictly greater than `x` (positive finite `x`).
fn next_up(x: f64) -> f64 {
    f64::from_bits(x.to_bits() + 1)
}

/// Memoized MPRSF classification: per `(retention bin, period)` key the
/// fixed-point iterations run once (to find the saturation thresholds),
/// and every row of the bin classifies with a threshold comparison.
///
/// Keyed by `(bin, period bits)` rather than bin alone so a future
/// non-standard binning (custom periods per bin) still memoizes
/// correctly.
#[derive(Debug)]
pub struct MprsfMemo<'a> {
    calc: &'a MprsfCalculator,
    nbits: u32,
    thresholds: HashMap<(RefreshBin, u64), Vec<f64>>,
}

impl<'a> MprsfMemo<'a> {
    /// A memo for one calculator and counter width.
    pub fn new(calc: &'a MprsfCalculator, nbits: u32) -> Self {
        MprsfMemo {
            calc,
            nbits,
            thresholds: HashMap::new(),
        }
    }

    /// The saturated MPRSF of a row in `bin` with retention
    /// `retention_ms`, via the bin's cached thresholds.
    pub fn saturated(&mut self, bin: RefreshBin, retention_ms: f64) -> u8 {
        let period_ms = bin.period_ms();
        let thresholds = self
            .thresholds
            .entry((bin, period_ms.to_bits()))
            .or_insert_with(|| self.calc.saturation_thresholds(period_ms, self.nbits));
        thresholds.partition_point(|&t| t <= retention_ms) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrl_circuit::tech::Technology;

    fn calc() -> MprsfCalculator {
        MprsfCalculator::new(&AnalyticalModel::new(Technology::n90()), 0.0)
    }

    #[test]
    fn boundary_retention_has_zero_mprsf() {
        // A row whose retention exactly equals its period decays to the
        // threshold right at each sensing: no partial can be inserted.
        let c = calc();
        match c.mprsf(256.0, 256.0) {
            Mprsf::Finite(m) => assert_eq!(m, 0),
            Mprsf::Unbounded => panic!("boundary row cannot sustain unlimited partials"),
        }
    }

    #[test]
    fn mprsf_is_monotone_in_retention() {
        let c = calc();
        let value = |t: f64| match c.mprsf(t, 256.0) {
            Mprsf::Finite(m) => m,
            Mprsf::Unbounded => u32::MAX,
        };
        let mut prev = 0;
        for t in [256.0, 320.0, 512.0, 768.0, 1024.0, 2048.0, 8192.0] {
            let m = value(t);
            assert!(m >= prev, "mprsf({t}) = {m} < {prev}");
            prev = m;
        }
    }

    #[test]
    fn very_strong_rows_are_unbounded() {
        let c = calc();
        assert_eq!(c.mprsf(50_000.0, 256.0), Mprsf::Unbounded);
    }

    #[test]
    fn intermediate_rows_have_finite_nonzero_mprsf() {
        // The interesting design space: some retention between the
        // boundary and "effectively infinite" must yield 1..=10 partials.
        let c = calc();
        let mut saw_intermediate = false;
        for t in (300..4000).step_by(50) {
            if let Mprsf::Finite(m) = c.mprsf(t as f64, 256.0) {
                if (1..=10).contains(&m) {
                    saw_intermediate = true;
                }
            }
        }
        assert!(saw_intermediate, "no intermediate MPRSF values found");
    }

    #[test]
    fn guard_band_reduces_mprsf() {
        let model = AnalyticalModel::new(Technology::n90());
        let relaxed = MprsfCalculator::new(&model, 0.0);
        let strict = MprsfCalculator::new(&model, 0.05);
        let as_num = |m: Mprsf| match m {
            Mprsf::Finite(v) => v as u64,
            Mprsf::Unbounded => u64::MAX,
        };
        for t in [400.0, 800.0, 1600.0, 6400.0] {
            assert!(
                as_num(strict.mprsf(t, 256.0)) <= as_num(relaxed.mprsf(t, 256.0)),
                "guard band must not increase MPRSF at T={t}"
            );
        }
    }

    #[test]
    fn saturation_caps_at_counter_width() {
        assert_eq!(Mprsf::Finite(1).saturate(2), 1);
        assert_eq!(Mprsf::Finite(9).saturate(2), 3);
        assert_eq!(Mprsf::Unbounded.saturate(2), 3);
        assert_eq!(Mprsf::Unbounded.saturate(4), 15);
    }

    #[test]
    fn partial_transfer_interpolates_smoothly() {
        let c = calc();
        let a = c.partial_transfer(0.70);
        let b = c.partial_transfer(0.700001);
        assert!((a - b).abs() < 1e-4);
        // Transfer must add charge.
        assert!(a > 0.70);
    }

    #[test]
    fn table_has_one_entry_per_row() {
        use vrl_retention::distribution::RetentionDistribution;
        let profile = BankProfile::generate(&RetentionDistribution::liu_et_al(), 512, 32, 3);
        let bins = BinningTable::from_profile(&profile);
        let table = calc().mprsf_table(&profile, &bins, 2);
        assert_eq!(table.len(), 512);
        assert!(table.iter().all(|&m| m <= 3));
    }

    #[test]
    #[should_panic(expected = "exceeds retention")]
    fn period_above_retention_panics() {
        let _ = calc().mprsf(100.0, 256.0);
    }

    #[test]
    fn memoized_table_is_bit_identical_to_direct() {
        use vrl_retention::distribution::RetentionDistribution;
        let c = calc();
        for seed in [42u64, 7, 1234, 3] {
            let profile =
                BankProfile::generate(&RetentionDistribution::liu_et_al(), 2048, 32, seed);
            let bins = BinningTable::from_profile(&profile);
            for nbits in [1u32, 2, 4] {
                let direct = c.mprsf_table(&profile, &bins, nbits);
                let memo = c.mprsf_table_memo(&profile, &bins, nbits);
                assert_eq!(direct, memo, "seed {seed}, nbits {nbits}");
            }
        }
    }

    #[test]
    fn thresholds_are_exact_step_points() {
        let c = calc();
        let thresholds = c.saturation_thresholds(256.0, 2);
        assert_eq!(thresholds.len(), 3);
        // Thresholds are non-decreasing.
        assert!(thresholds.windows(2).all(|w| w[0] <= w[1]));
        for (i, &t) in thresholds.iter().enumerate() {
            let m = (i + 1) as u8;
            if !t.is_finite() {
                continue;
            }
            // At the threshold the saturated value reaches m; one ULP
            // below it does not.
            assert!(c.mprsf(t, 256.0).saturate(2) >= m);
            let below = f64::from_bits(t.to_bits() - 1);
            if below >= 256.0 {
                assert!(
                    c.mprsf(below, 256.0).saturate(2) < m,
                    "threshold {i} not tight"
                );
            }
        }
    }

    #[test]
    fn memo_caches_per_bin_period_key() {
        let c = calc();
        let mut memo = MprsfMemo::new(&c, 2);
        use vrl_retention::binning::RefreshBin;
        let a = memo.saturated(RefreshBin::Ms256, 1000.0);
        let b = memo.saturated(RefreshBin::Ms256, 1000.0);
        assert_eq!(a, b);
        assert_eq!(
            u32::from(a),
            match c.mprsf(1000.0, 256.0) {
                Mprsf::Finite(m) => m.min(3),
                Mprsf::Unbounded => 3,
            }
        );
    }
}
