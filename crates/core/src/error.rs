//! Typed errors for the experiment layer.

use std::fmt;

/// An error from the experiment harness.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The requested benchmark name is not in the workload table.
    UnknownWorkload {
        /// The name that was asked for.
        requested: String,
        /// Every benchmark name the harness knows.
        known: Vec<String>,
    },
    /// The underlying cycle-level simulation failed.
    Sim(vrl_dram_sim::Error),
    /// A worker of the parallel execution engine panicked while running
    /// a simulation job.
    WorkerPanic {
        /// Index of the job (in deterministic job order) that panicked.
        job: usize,
        /// The rendered panic payload.
        message: String,
    },
    /// The execution engine lost a job's result (a pool bug: the job
    /// neither returned nor panicked).
    JobLost {
        /// Index of the lost job.
        job: usize,
    },
    /// A checkpoint could not be written, read, or decoded.
    Snapshot(vrl_snap::SnapError),
    /// A checkpoint exists and decodes, but belongs to a different run
    /// (front end, benchmark, policy, or configuration differs).
    ResumeMismatch {
        /// What differed between the checkpoint and this invocation.
        what: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownWorkload { requested, known } => {
                write!(
                    f,
                    "unknown workload {requested:?}; known: {}",
                    known.join(", ")
                )
            }
            Error::Sim(e) => write!(f, "simulation failed: {e}"),
            Error::WorkerPanic { job, message } => {
                write!(f, "parallel worker panicked on job {job}: {message}")
            }
            Error::JobLost { job } => {
                write!(f, "pool bug: job {job} never produced a result")
            }
            Error::Snapshot(e) => write!(f, "checkpoint failed: {e}"),
            Error::ResumeMismatch { what } => {
                write!(f, "checkpoint belongs to a different run: {what}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Sim(e) => Some(e),
            Error::Snapshot(e) => Some(e),
            Error::UnknownWorkload { .. }
            | Error::WorkerPanic { .. }
            | Error::JobLost { .. }
            | Error::ResumeMismatch { .. } => None,
        }
    }
}

impl From<vrl_dram_sim::Error> for Error {
    fn from(e: vrl_dram_sim::Error) -> Self {
        Error::Sim(e)
    }
}

impl From<vrl_snap::SnapError> for Error {
    fn from(e: vrl_snap::SnapError) -> Self {
        Error::Snapshot(e)
    }
}

impl From<vrl_exec::ExecError<Error>> for Error {
    fn from(e: vrl_exec::ExecError<Error>) -> Self {
        match e {
            vrl_exec::ExecError::Job { error, .. } => error,
            vrl_exec::ExecError::Panic { job, message } => Error::WorkerPanic { job, message },
            vrl_exec::ExecError::Lost { job } => Error::JobLost { job },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_workload_lists_alternatives() {
        let e = Error::UnknownWorkload {
            requested: "nope".into(),
            known: vec!["ferret".into(), "vips".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("nope") && msg.contains("ferret") && msg.contains("vips"));
    }

    #[test]
    fn sim_errors_convert_and_chain() {
        let inner = vrl_dram_sim::Error::SchedulerStalled { cycle: 5 };
        let e: Error = inner.clone().into();
        assert_eq!(e, Error::Sim(inner));
        assert!(std::error::Error::source(&e).is_some());
    }
}
