//! Span-segmented runs with progress callbacks.
//!
//! The checkpointing layer proved that pausing an engine at an
//! arbitrary cycle boundary inserts no state change: composing
//! `run_span_observed` spans is bit-identical to one unsegmented run.
//! This module reuses that property for *streaming progress* instead of
//! snapshots — `vrl-serve` drives every job through the
//! `run_*_spanned_with` family so clients receive per-span cycle counts
//! while the final statistics stay byte-identical to the plain
//! `run_policy` / `run_frfcfs` / `run_scheduled` paths (asserted by the
//! tests below and by the serve bit-identity suite).

use vrl_dram_sim::controller::{ControllerCursor, ControllerStats, FrFcfsController};
use vrl_dram_sim::sim::{NullObserver, SimConfig, Simulator};
use vrl_dram_sim::{AutoRefresh, SimStats, TimingParams};
use vrl_sched::{SchedConfig, SchedCursor, SchedStats, Scheduler};
use vrl_trace::TraceRecord;

use crate::checkpoint::with_policy;
use crate::error::Error;
use crate::experiment::{Experiment, PolicyKind};

/// Progress from one completed span of a spanned run: the run paused at
/// `cycle` with simulation still ahead of it. Emitted only at pauses —
/// a run shorter than one span completes without progress callbacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanProgress {
    /// 1-based index of the span that just completed.
    pub span: u32,
    /// The cycle the engine paused at.
    pub cycle: u64,
    /// The run's final cycle (`duration_ms` in cycles).
    pub end: u64,
}

/// Clamps a span cadence: `0` means "never pause" (one giant span).
fn cadence(span_cycles: u64) -> u64 {
    if span_cycles == 0 {
        u64::MAX
    } else {
        span_cycles
    }
}

impl Experiment {
    /// The run's final cycle for this experiment's duration.
    fn end_cycle(&self) -> u64 {
        TimingParams::paper_default().ms_to_cycles(self.config().duration_ms)
    }

    /// [`Experiment::run_policy_with`] segmented into spans of
    /// `span_cycles` cycles, invoking `on_span` at every pause.
    /// Bit-identical to the unsegmented run.
    pub fn run_policy_spanned_with<I, F>(
        &self,
        kind: PolicyKind,
        trace: I,
        span_cycles: u64,
        mut on_span: F,
    ) -> SimStats
    where
        I: Iterator<Item = TraceRecord>,
        F: FnMut(SpanProgress),
    {
        let end = self.end_cycle();
        let every = cadence(span_cycles);
        let mut trace = trace.peekable();
        with_policy!(kind, self.plan(), |p| {
            let mut sim = Simulator::new(SimConfig::with_rows(self.config().rows), p);
            let mut stop = every.min(end);
            let mut span = 0u32;
            loop {
                sim.run_span_observed(&mut trace, stop, &mut NullObserver);
                if stop >= end {
                    return sim.finish_observed(end, &mut NullObserver);
                }
                span += 1;
                on_span(SpanProgress {
                    span,
                    cycle: stop,
                    end,
                });
                stop = stop.saturating_add(every);
            }
        })
    }

    /// [`Experiment::run_frfcfs_with`] segmented into spans of
    /// `span_cycles` cycles, invoking `on_span` at every pause.
    /// Bit-identical to the unsegmented run.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Sim`] for an invalid queue depth.
    pub fn run_frfcfs_spanned_with<I, F>(
        &self,
        kind: PolicyKind,
        trace: I,
        queue_depth: usize,
        span_cycles: u64,
        mut on_span: F,
    ) -> Result<ControllerStats, Error>
    where
        I: Iterator<Item = TraceRecord>,
        F: FnMut(SpanProgress),
    {
        let end = self.end_cycle();
        let every = cadence(span_cycles);
        let mut trace = trace.take_while(|r| r.cycle < end).peekable();
        with_policy!(kind, self.plan(), |p| {
            let mut ctl =
                FrFcfsController::new(SimConfig::with_rows(self.config().rows), p, queue_depth)?;
            let mut cursor = ControllerCursor::default();
            let mut stop = every.min(end);
            let mut span = 0u32;
            loop {
                let paused =
                    ctl.run_span_observed(&mut cursor, &mut trace, end, stop, &mut NullObserver)?;
                if !paused {
                    return Ok(ctl.finish(end));
                }
                span += 1;
                on_span(SpanProgress {
                    span,
                    cycle: stop,
                    end,
                });
                stop = stop.saturating_add(every);
            }
        })
    }

    /// [`Experiment::run_scheduled_with`] segmented into spans of
    /// `span_cycles` cycles, invoking `on_span` at every pause.
    /// Bit-identical to the unsegmented run.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Sim`] for a scheduler configuration or
    /// invariant failure.
    pub fn run_scheduled_spanned_with<I, F>(
        &self,
        kind: PolicyKind,
        sched: SchedConfig,
        trace: I,
        span_cycles: u64,
        on_span: F,
    ) -> Result<SchedStats, Error>
    where
        I: Iterator<Item = TraceRecord>,
        F: FnMut(SpanProgress),
    {
        with_policy!(kind, self.plan(), |p| {
            let engine = Scheduler::new(sched, p)?;
            self.drive_sched_spanned(engine, trace, span_cycles, on_span)
        })
    }

    /// One channel shard of a full-DIMM run, segmented into spans —
    /// the spanned analogue of [`Experiment::run_dimm_channel`] minus
    /// the event recorder. Merging every channel's stats with
    /// [`SchedStats::merge`] is bit-identical to
    /// [`Experiment::run_dimm_serial`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Sim`] for an out-of-range channel or scheduler
    /// invariant failure.
    pub fn run_dimm_channel_spanned_with<I, F>(
        &self,
        kind: PolicyKind,
        sched: SchedConfig,
        channel: u32,
        trace: I,
        span_cycles: u64,
        on_span: F,
    ) -> Result<SchedStats, Error>
    where
        I: Iterator<Item = TraceRecord>,
        F: FnMut(SpanProgress),
    {
        with_policy!(kind, self.plan(), |p| {
            let engine = Scheduler::for_channel(sched, p, channel)?;
            self.drive_sched_spanned(engine, trace, span_cycles, on_span)
        })
    }

    /// The shared scheduler span loop behind the spanned sched/DIMM
    /// entry points.
    fn drive_sched_spanned<P, I, F>(
        &self,
        mut engine: Scheduler<P>,
        trace: I,
        span_cycles: u64,
        mut on_span: F,
    ) -> Result<SchedStats, Error>
    where
        P: vrl_dram_sim::policy::RefreshPolicy,
        I: Iterator<Item = TraceRecord>,
        F: FnMut(SpanProgress),
    {
        let end = self.end_cycle();
        let every = cadence(span_cycles);
        let mut trace = trace.take_while(|r| r.cycle < end).peekable();
        let mut cursor = SchedCursor::default();
        let mut stop = every.min(end);
        let mut span = 0u32;
        loop {
            let paused =
                engine.run_span_observed(&mut cursor, &mut trace, end, stop, &mut NullObserver)?;
            if !paused {
                return Ok(engine.finish(end));
            }
            span += 1;
            on_span(SpanProgress {
                span,
                cycle: stop,
                end,
            });
            stop = stop.saturating_add(every);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;

    fn small() -> Experiment {
        Experiment::new(ExperimentConfig {
            rows: 256,
            duration_ms: 192.0,
            ..Default::default()
        })
    }

    #[test]
    fn spanned_sim_is_bit_identical_and_reports_progress() {
        let e = small();
        for kind in PolicyKind::ALL {
            let plain = e.run_policy(kind, "swaptions").unwrap();
            let trace = e.materialize_trace("swaptions").unwrap();
            let mut spans = Vec::new();
            let spanned =
                e.run_policy_spanned_with(kind, trace.iter().copied(), 500_000, |p| spans.push(p));
            assert_eq!(spanned, plain, "{kind:?} spanned run must be bit-identical");
            assert!(!spans.is_empty(), "a multi-span run reports progress");
            assert!(spans.windows(2).all(|w| w[0].cycle < w[1].cycle));
            assert!(spans.iter().all(|p| p.cycle < p.end));
        }
    }

    #[test]
    fn spanned_frfcfs_is_bit_identical() {
        let e = small();
        let plain = e.run_frfcfs(PolicyKind::Vrl, "canneal", 8).unwrap();
        let trace = e.materialize_trace("canneal").unwrap();
        let mut spans = 0;
        let spanned = e
            .run_frfcfs_spanned_with(PolicyKind::Vrl, trace.iter().copied(), 8, 400_000, |_| {
                spans += 1;
            })
            .unwrap();
        assert_eq!(spanned, plain);
        assert!(spans > 0);
    }

    #[test]
    fn spanned_sched_is_bit_identical() {
        let e = small();
        let sched = e.sched_config(4).unwrap();
        let plain = e
            .run_scheduled(PolicyKind::VrlAccess, "bgsave", sched)
            .unwrap();
        let trace = e.materialize_trace("bgsave").unwrap();
        let spanned = e
            .run_scheduled_spanned_with(
                PolicyKind::VrlAccess,
                sched,
                trace.iter().copied(),
                300_000,
                |_| {},
            )
            .unwrap();
        assert_eq!(spanned, plain);
    }

    #[test]
    fn spanned_dimm_channels_merge_to_the_serial_dimm_run() {
        let e = small();
        let sched = e.dimm_config(2, 1, 2).unwrap();
        let direct = e.run_dimm_serial(PolicyKind::Vrl, "ferret", sched).unwrap();
        let trace = e.materialize_trace("ferret").unwrap();
        let mut merged = SchedStats::default();
        for channel in 0..sched.channels() {
            let shard = e
                .run_dimm_channel_spanned_with(
                    PolicyKind::Vrl,
                    sched,
                    channel,
                    trace.iter().copied(),
                    250_000,
                    |_| {},
                )
                .unwrap();
            merged = merged.merge(&shard);
        }
        assert_eq!(merged, direct.stats);
    }

    #[test]
    fn zero_cadence_means_one_span_and_no_callbacks() {
        let e = small();
        let plain = e.run_policy(PolicyKind::Raidr, "swaptions").unwrap();
        let trace = e.materialize_trace("swaptions").unwrap();
        let spanned =
            e.run_policy_spanned_with(PolicyKind::Raidr, trace.iter().copied(), 0, |_| {
                panic!("no pauses expected")
            });
        assert_eq!(spanned, plain);
    }

    #[test]
    fn from_artifacts_shares_and_matches_fresh_builds() {
        let config = ExperimentConfig {
            rows: 256,
            duration_ms: 128.0,
            ..Default::default()
        };
        let fresh = Experiment::new(config);
        let shared =
            Experiment::from_artifacts(config, fresh.profile_shared(), fresh.plan_shared());
        assert!(std::sync::Arc::ptr_eq(
            &fresh.plan_shared(),
            &shared.plan_shared()
        ));
        let a = fresh.run_policy(PolicyKind::Vrl, "swaptions").unwrap();
        let b = shared.run_policy(PolicyKind::Vrl, "swaptions").unwrap();
        assert_eq!(a, b);
    }
}
