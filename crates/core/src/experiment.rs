//! The end-to-end experiment harness (the machinery behind Figure 4).
//!
//! The harness owns one set of expensive artifacts — the analytical
//! model, the profiled bank, the refresh plan, the power model — shared
//! via `Arc` so that cloning an [`Experiment`] (and fanning simulation
//! jobs across the [`vrl_exec`] worker pool) never recomputes or copies
//! them. [`Experiment::compare_all`] runs the full
//! (benchmark × policy) matrix through the pool and is bit-identical to
//! the serial path ([`Experiment::compare_all_serial`]): each job is an
//! independent deterministic simulation, and results are assembled in
//! job order.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use vrl_exec::{map_ordered, map_ordered_report, ExecConfig, PoolReport};

use vrl_circuit::model::AnalyticalModel;
use vrl_circuit::tech::Technology;
use vrl_dram_sim::controller::{ControllerStats, FrFcfsController};
use vrl_dram_sim::fault::{FaultConfig, FaultInjector, FaultStats};
use vrl_dram_sim::guard::{Guard, GuardConfig, GuardStats};
use vrl_dram_sim::integrity::IntegrityChecker;
use vrl_dram_sim::policy::AdaptivePolicy;
use vrl_dram_sim::sim::{NullObserver, SimConfig, SimObserver, Simulator};
use vrl_dram_sim::{AutoRefresh, SimStats, TimingParams};
use vrl_obs::{merge_streams, Event, EventStream, MetricsRegistry, MetricsSnapshot, Recorder};
use vrl_power::model::{PowerBreakdown, PowerModel};
use vrl_retention::distribution::RetentionDistribution;
use vrl_retention::profile::BankProfile;
use vrl_sched::{SchedConfig, SchedStats, Scheduler};
use vrl_trace::{TraceRecord, Workload, WorkloadSpec};

use crate::error::Error;
use crate::physics::ModelPhysics;
use crate::plan::RefreshPlan;

/// Which refresh policy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Fixed 64 ms auto-refresh.
    Auto,
    /// RAIDR binned refresh.
    Raidr,
    /// VRL (Algorithm 1).
    Vrl,
    /// VRL-Access (Algorithm 1 + activation resets).
    VrlAccess,
}

impl PolicyKind {
    /// All policies in evaluation order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Auto,
        PolicyKind::Raidr,
        PolicyKind::Vrl,
        PolicyKind::VrlAccess,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Auto => "auto",
            PolicyKind::Raidr => "raidr",
            PolicyKind::Vrl => "vrl",
            PolicyKind::VrlAccess => "vrl-access",
        }
    }
}

/// Experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Rows in the bank (paper: 8192).
    pub rows: u32,
    /// Cells per row (paper: 32).
    pub cells_per_row: u32,
    /// Profile / trace seed.
    pub seed: u64,
    /// Simulated wall time per run (ms).
    pub duration_ms: f64,
    /// MPRSF counter width (paper evaluates 2).
    pub nbits: u32,
    /// MPRSF guard band (charge fraction).
    pub guard_band: f64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            rows: 8192,
            cells_per_row: 32,
            seed: 42,
            duration_ms: 512.0,
            nbits: 2,
            guard_band: 0.0,
        }
    }
}

/// One Figure 4 comparison row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Benchmark name.
    pub benchmark: String,
    /// RAIDR refresh-busy cycles.
    pub raidr_cycles: u64,
    /// VRL refresh-busy cycles.
    pub vrl_cycles: u64,
    /// VRL-Access refresh-busy cycles.
    pub vrl_access_cycles: u64,
    /// VRL normalized to RAIDR.
    pub vrl_normalized: f64,
    /// VRL-Access normalized to RAIDR.
    pub vrl_access_normalized: f64,
    /// RAIDR refresh power (mW).
    pub raidr_refresh_mw: f64,
    /// VRL-Access refresh power (mW).
    pub vrl_access_refresh_mw: f64,
}

/// The end-to-end experiment: model + profile + plan + simulator glue.
///
/// Cloning is cheap: the model, profile, plan, and power model are
/// `Arc`-shared, never recomputed.
#[derive(Debug, Clone)]
pub struct Experiment {
    config: ExperimentConfig,
    model: Arc<AnalyticalModel>,
    profile: Arc<BankProfile>,
    plan: Arc<RefreshPlan>,
    power: Arc<PowerModel>,
}

impl Experiment {
    /// Builds the experiment: generates the retention profile, bins it,
    /// and computes the MPRSF table from the analytical model.
    pub fn new(config: ExperimentConfig) -> Self {
        let model = AnalyticalModel::new(Technology::n90());
        let profile = BankProfile::generate(
            &RetentionDistribution::liu_et_al(),
            config.rows as usize,
            config.cells_per_row,
            config.seed,
        );
        let plan = RefreshPlan::build(&model, &profile, config.nbits, config.guard_band);
        Experiment {
            config,
            model: Arc::new(model),
            profile: Arc::new(profile),
            plan: Arc::new(plan),
            power: Arc::new(PowerModel::paper_default()),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// The analytical model.
    pub fn model(&self) -> &AnalyticalModel {
        &self.model
    }

    /// The retention profile.
    pub fn profile(&self) -> &BankProfile {
        &self.profile
    }

    /// The refresh plan (binning + MPRSF).
    pub fn plan(&self) -> &RefreshPlan {
        &self.plan
    }

    /// The power model.
    pub fn power(&self) -> &PowerModel {
        &self.power
    }

    /// The `Arc` behind [`Experiment::plan`], for callers that fan the
    /// plan across threads themselves.
    pub fn plan_shared(&self) -> Arc<RefreshPlan> {
        Arc::clone(&self.plan)
    }

    pub(crate) fn trace(&self, benchmark: &str) -> Result<vrl_trace::gen::Records, Error> {
        let spec = WorkloadSpec::parsec(benchmark).ok_or_else(|| Error::UnknownWorkload {
            requested: benchmark.to_owned(),
            known: WorkloadSpec::BENCHMARKS
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
        })?;
        let workload = Workload::new(spec, self.config.rows, self.config.seed);
        Ok(workload.records(self.config.duration_ms))
    }

    /// Runs one policy against one benchmark's trace (streamed — traces
    /// are regenerated deterministically per run).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownWorkload`] for an unknown benchmark name,
    /// with the list of known benchmarks.
    pub fn run_policy(&self, kind: PolicyKind, benchmark: &str) -> Result<SimStats, Error> {
        let trace = self.trace(benchmark)?;
        Ok(self.run_policy_with(kind, trace, &mut NullObserver))
    }

    /// Runs one policy over an explicit trace, reporting events to an
    /// observer.
    pub fn run_policy_with<I, O>(&self, kind: PolicyKind, trace: I, observer: &mut O) -> SimStats
    where
        I: Iterator<Item = TraceRecord>,
        O: SimObserver,
    {
        let sim_config = SimConfig::with_rows(self.config.rows);
        let d = self.config.duration_ms;
        match kind {
            PolicyKind::Auto => {
                Simulator::new(sim_config, AutoRefresh::new(64.0)).run_observed(trace, d, observer)
            }
            PolicyKind::Raidr => {
                Simulator::new(sim_config, self.plan.raidr()).run_observed(trace, d, observer)
            }
            PolicyKind::Vrl => {
                Simulator::new(sim_config, self.plan.vrl()).run_observed(trace, d, observer)
            }
            PolicyKind::VrlAccess => {
                Simulator::new(sim_config, self.plan.vrl_access()).run_observed(trace, d, observer)
            }
        }
    }

    /// Runs one policy against one benchmark on the single-bank front
    /// end while recording a structured event trace.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownWorkload`] for an unknown benchmark name.
    pub fn run_policy_traced(
        &self,
        kind: PolicyKind,
        benchmark: &str,
    ) -> Result<(SimStats, EventStream), Error> {
        let trace = self.trace(benchmark)?;
        let mut recorder = Recorder::single_bank(benchmark, kind.name());
        let stats = self.run_policy_with(kind, trace, &mut recorder);
        Ok((stats, recorder.finish()))
    }

    /// Runs a policy under the integrity checker; returns the stats and
    /// the number of charge violations (must be 0 for a sound plan).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownWorkload`] for an unknown benchmark name.
    pub fn run_checked(
        &self,
        kind: PolicyKind,
        benchmark: &str,
    ) -> Result<(SimStats, usize), Error> {
        let trace = self.trace(benchmark)?;
        let physics = ModelPhysics::new(&self.model);
        let retention: Vec<f64> = self.profile.iter().map(|r| r.weakest_ms).collect();
        let mut checker = IntegrityChecker::new(physics, TimingParams::paper_default(), retention);
        let stats = self.run_policy_with(kind, trace, &mut checker);
        Ok((stats, checker.violations().len()))
    }

    /// The Figure 4 comparison for one benchmark.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownWorkload`] for an unknown benchmark name.
    pub fn compare(&self, benchmark: &str) -> Result<ComparisonRow, Error> {
        let raidr = self.run_policy(PolicyKind::Raidr, benchmark)?;
        let vrl = self.run_policy(PolicyKind::Vrl, benchmark)?;
        let vrl_access = self.run_policy(PolicyKind::VrlAccess, benchmark)?;
        Ok(self.assemble_row(benchmark, &raidr, &vrl, &vrl_access))
    }

    /// Builds one comparison row from its three policy runs. Shared by
    /// the serial and parallel paths so their arithmetic is identical.
    fn assemble_row(
        &self,
        benchmark: &str,
        raidr: &SimStats,
        vrl: &SimStats,
        vrl_access: &SimStats,
    ) -> ComparisonRow {
        let raidr_power: PowerBreakdown = self.power.breakdown(raidr);
        let va_power: PowerBreakdown = self.power.breakdown(vrl_access);
        ComparisonRow {
            benchmark: benchmark.to_owned(),
            raidr_cycles: raidr.refresh_busy_cycles,
            vrl_cycles: vrl.refresh_busy_cycles,
            vrl_access_cycles: vrl_access.refresh_busy_cycles,
            vrl_normalized: vrl.refresh_busy_cycles as f64 / raidr.refresh_busy_cycles as f64,
            vrl_access_normalized: vrl_access.refresh_busy_cycles as f64
                / raidr.refresh_busy_cycles as f64,
            raidr_refresh_mw: raidr_power.refresh_mw,
            vrl_access_refresh_mw: va_power.refresh_mw,
        }
    }

    /// The policies a Figure 4 comparison needs, in column order.
    const COMPARE_POLICIES: [PolicyKind; 3] =
        [PolicyKind::Raidr, PolicyKind::Vrl, PolicyKind::VrlAccess];

    /// The full Figure 4 — every benchmark — fanned across the default
    /// worker pool (`VRL_THREADS` or the host's available parallelism).
    ///
    /// # Errors
    ///
    /// Propagates the first failing benchmark's [`Error`] (in job
    /// order) instead of silently dropping it; a worker panic surfaces
    /// as [`Error::WorkerPanic`].
    pub fn compare_all(&self) -> Result<Vec<ComparisonRow>, Error> {
        self.compare_all_with(&ExecConfig::from_env())
    }

    /// [`Experiment::compare_all`] on an explicit pool configuration.
    ///
    /// # Errors
    ///
    /// See [`Experiment::compare_all`].
    pub fn compare_all_with(&self, cfg: &ExecConfig) -> Result<Vec<ComparisonRow>, Error> {
        let cells = self.run_matrix_with(cfg, &Self::COMPARE_POLICIES)?.0;
        Ok(cells
            .chunks_exact(Self::COMPARE_POLICIES.len())
            .map(|group| {
                self.assemble_row(
                    &group[0].benchmark,
                    &group[0].stats,
                    &group[1].stats,
                    &group[2].stats,
                )
            })
            .collect())
    }

    /// The strictly serial Figure 4 path: the baseline the determinism
    /// tests and the throughput bench compare the pool against.
    ///
    /// # Errors
    ///
    /// Propagates the first failing benchmark's [`Error`].
    pub fn compare_all_serial(&self) -> Result<Vec<ComparisonRow>, Error> {
        WorkloadSpec::BENCHMARKS
            .iter()
            .map(|name| self.compare(name))
            .collect()
    }

    /// Runs the full (benchmark × policy) matrix through the worker
    /// pool: every workload in Figure 4 order crossed with `policies`,
    /// one simulation job each, results in deterministic job order
    /// (benchmark-major). Also returns the pool's timing report — the
    /// raw material for the throughput meter.
    ///
    /// # Errors
    ///
    /// Propagates the lowest-job-index failure; worker panics surface
    /// as [`Error::WorkerPanic`].
    pub fn run_matrix_with(
        &self,
        cfg: &ExecConfig,
        policies: &[PolicyKind],
    ) -> Result<(Vec<MatrixCell>, PoolReport), Error> {
        let jobs: Vec<(&str, PolicyKind)> = WorkloadSpec::BENCHMARKS
            .iter()
            .flat_map(|name| policies.iter().map(move |&kind| (*name, kind)))
            .collect();
        let (result, report) = map_ordered_report(cfg, &jobs, |_, &(benchmark, kind)| {
            self.run_policy(kind, benchmark).map(|stats| MatrixCell {
                benchmark: benchmark.to_owned(),
                policy: kind,
                stats,
            })
        });
        Ok((result.map_err(Error::from)?, report))
    }

    /// The serial reference for [`Experiment::run_matrix_with`].
    ///
    /// # Errors
    ///
    /// Propagates the first failing run's [`Error`].
    pub fn run_matrix_serial(&self, policies: &[PolicyKind]) -> Result<Vec<MatrixCell>, Error> {
        WorkloadSpec::BENCHMARKS
            .iter()
            .flat_map(|name| policies.iter().map(move |&kind| (*name, kind)))
            .map(|(benchmark, kind)| {
                self.run_policy(kind, benchmark).map(|stats| MatrixCell {
                    benchmark: benchmark.to_owned(),
                    policy: kind,
                    stats,
                })
            })
            .collect()
    }

    /// A scheduler geometry for this experiment's bank: the configured
    /// row count split across `banks` banks.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Sim`] if `banks` does not evenly split
    /// [`ExperimentConfig::rows`] into power-of-two banks of power-of-two
    /// rows (the address map needs whole bit fields).
    pub fn sched_config(&self, banks: u32) -> Result<SchedConfig, Error> {
        if banks == 0 || !self.config.rows.is_multiple_of(banks) {
            return Err(Error::Sim(vrl_dram_sim::Error::InvalidConfig {
                reason: format!(
                    "{banks} banks cannot evenly split {} rows",
                    self.config.rows
                ),
            }));
        }
        Ok(SchedConfig::with_geometry(banks, self.config.rows / banks)?)
    }

    /// A full-DIMM scheduler geometry for this experiment: the
    /// configured row count split evenly across
    /// `channels × ranks × banks_per_rank` banks.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Sim`] if the geometry does not evenly split
    /// [`ExperimentConfig::rows`] into power-of-two banks of
    /// power-of-two rows (the address map needs whole bit fields).
    pub fn dimm_config(
        &self,
        channels: u32,
        ranks: u32,
        banks_per_rank: u32,
    ) -> Result<SchedConfig, Error> {
        let banks = channels
            .checked_mul(ranks)
            .and_then(|n| n.checked_mul(banks_per_rank))
            .unwrap_or(0);
        if banks == 0 || !self.config.rows.is_multiple_of(banks) {
            return Err(Error::Sim(vrl_dram_sim::Error::InvalidConfig {
                reason: format!(
                    "{channels} channels × {ranks} ranks × {banks_per_rank} banks \
                     cannot evenly split {} rows",
                    self.config.rows
                ),
            }));
        }
        Ok(SchedConfig::with_dimm_geometry(
            channels,
            ranks,
            banks_per_rank,
            self.config.rows / banks,
        )?)
    }

    /// Runs one channel shard of a full-DIMM simulation: the whole
    /// benchmark trace is regenerated deterministically, records
    /// steered to other channels are dropped by the shard, and events
    /// come back in a stream labeled `"{benchmark}/ch{channel}"` with
    /// global bank indices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownWorkload`] for an unknown benchmark name
    /// and [`Error::Sim`] for an out-of-range channel or scheduler
    /// invariant failure.
    pub fn run_dimm_channel(
        &self,
        kind: PolicyKind,
        benchmark: &str,
        sched: SchedConfig,
        channel: u32,
    ) -> Result<(SchedStats, EventStream), Error> {
        let trace = self.trace(benchmark)?;
        let label = format!("{benchmark}/ch{channel}");
        let mut recorder = Recorder::new(&label, kind.name(), sched.rows_per_bank());
        let d = self.config.duration_ms;
        let stats = match kind {
            PolicyKind::Auto => Scheduler::for_channel(sched, AutoRefresh::new(64.0), channel)?
                .run_observed(trace, d, &mut recorder)?,
            PolicyKind::Raidr => Scheduler::for_channel(sched, self.plan.raidr(), channel)?
                .run_observed(trace, d, &mut recorder)?,
            PolicyKind::Vrl => Scheduler::for_channel(sched, self.plan.vrl(), channel)?
                .run_observed(trace, d, &mut recorder)?,
            PolicyKind::VrlAccess => Scheduler::for_channel(
                sched,
                self.plan.vrl_access(),
                channel,
            )?
            .run_observed(trace, d, &mut recorder)?,
        };
        Ok((stats, recorder.finish()))
    }

    /// Runs every channel shard of a full-DIMM simulation serially and
    /// merges the results — the bit-identity reference for
    /// [`Experiment::run_dimm_with`].
    ///
    /// # Errors
    ///
    /// See [`Experiment::run_dimm_channel`].
    pub fn run_dimm_serial(
        &self,
        kind: PolicyKind,
        benchmark: &str,
        sched: SchedConfig,
    ) -> Result<DimmRun, Error> {
        (0..sched.channels())
            .map(|c| self.run_dimm_channel(kind, benchmark, sched, c))
            .collect::<Result<Vec<_>, _>>()
            .map(DimmRun::assemble)
    }

    /// Runs a full-DIMM simulation with one independent scheduler shard
    /// per channel fanned across the worker pool. Shards never share
    /// state, so the result is bit-identical to
    /// [`Experiment::run_dimm_serial`] for every pool shape.
    ///
    /// # Errors
    ///
    /// Propagates the lowest-channel failure; worker panics surface as
    /// [`Error::WorkerPanic`].
    pub fn run_dimm_with(
        &self,
        cfg: &ExecConfig,
        kind: PolicyKind,
        benchmark: &str,
        sched: SchedConfig,
    ) -> Result<DimmRun, Error> {
        let channels: Vec<u32> = (0..sched.channels()).collect();
        let shards = map_ordered(cfg, &channels, |_, &c| {
            self.run_dimm_channel(kind, benchmark, sched, c)
        })
        .map_err(Error::from)?;
        Ok(DimmRun::assemble(shards))
    }

    /// Runs one policy against one benchmark on the FR-FCFS controller
    /// front end.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownWorkload`] for an unknown benchmark name
    /// and [`Error::Sim`] for an invalid queue depth.
    pub fn run_frfcfs(
        &self,
        kind: PolicyKind,
        benchmark: &str,
        queue_depth: usize,
    ) -> Result<ControllerStats, Error> {
        let trace = self.trace(benchmark)?;
        let config = SimConfig::with_rows(self.config.rows);
        let d = self.config.duration_ms;
        Ok(match kind {
            PolicyKind::Auto => {
                FrFcfsController::new(config, AutoRefresh::new(64.0), queue_depth)?.run(trace, d)?
            }
            PolicyKind::Raidr => {
                FrFcfsController::new(config, self.plan.raidr(), queue_depth)?.run(trace, d)?
            }
            PolicyKind::Vrl => {
                FrFcfsController::new(config, self.plan.vrl(), queue_depth)?.run(trace, d)?
            }
            PolicyKind::VrlAccess => {
                FrFcfsController::new(config, self.plan.vrl_access(), queue_depth)?.run(trace, d)?
            }
        })
    }

    /// Runs one policy against one benchmark on the multi-bank command
    /// scheduler front end.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownWorkload`] for an unknown benchmark name
    /// and [`Error::Sim`] for a scheduler configuration or invariant
    /// failure.
    pub fn run_scheduled(
        &self,
        kind: PolicyKind,
        benchmark: &str,
        sched: SchedConfig,
    ) -> Result<SchedStats, Error> {
        let trace = self.trace(benchmark)?;
        self.run_scheduled_with(kind, sched, trace, &mut NullObserver)
    }

    /// Runs a policy on the scheduler front end over an explicit trace,
    /// reporting refresh/activate events (keyed by global row index) to
    /// an observer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Sim`] for a scheduler configuration or invariant
    /// failure.
    pub fn run_scheduled_with<I, O>(
        &self,
        kind: PolicyKind,
        sched: SchedConfig,
        trace: I,
        observer: &mut O,
    ) -> Result<SchedStats, Error>
    where
        I: Iterator<Item = TraceRecord>,
        O: SimObserver,
    {
        let d = self.config.duration_ms;
        Ok(match kind {
            PolicyKind::Auto => {
                Scheduler::new(sched, AutoRefresh::new(64.0))?.run_observed(trace, d, observer)?
            }
            PolicyKind::Raidr => {
                Scheduler::new(sched, self.plan.raidr())?.run_observed(trace, d, observer)?
            }
            PolicyKind::Vrl => {
                Scheduler::new(sched, self.plan.vrl())?.run_observed(trace, d, observer)?
            }
            PolicyKind::VrlAccess => {
                Scheduler::new(sched, self.plan.vrl_access())?.run_observed(trace, d, observer)?
            }
        })
    }

    /// Runs one policy against one benchmark on the scheduler front end
    /// while recording a structured event trace (per-bank event tracks,
    /// keyed by the scheduler's row→bank address map).
    ///
    /// # Errors
    ///
    /// See [`Experiment::run_scheduled`].
    pub fn run_scheduled_traced(
        &self,
        kind: PolicyKind,
        benchmark: &str,
        sched: SchedConfig,
    ) -> Result<(SchedStats, EventStream), Error> {
        let trace = self.trace(benchmark)?;
        let mut recorder = Recorder::new(benchmark, kind.name(), sched.rows_per_bank());
        let stats = self.run_scheduled_with(kind, sched, trace, &mut recorder)?;
        Ok((stats, recorder.finish()))
    }

    /// Runs a policy on the scheduler front end under the integrity
    /// checker; returns the stats and the number of charge violations
    /// (must be 0 for a sound plan — postponement is bounded by the
    /// elasticity window, far below any retention margin).
    ///
    /// # Errors
    ///
    /// See [`Experiment::run_scheduled`].
    pub fn run_scheduled_checked(
        &self,
        kind: PolicyKind,
        benchmark: &str,
        sched: SchedConfig,
    ) -> Result<(SchedStats, usize), Error> {
        let trace = self.trace(benchmark)?;
        let physics = ModelPhysics::new(&self.model);
        let retention: Vec<f64> = self.profile.iter().map(|r| r.weakest_ms).collect();
        let mut checker = IntegrityChecker::new(physics, TimingParams::paper_default(), retention);
        let stats = self.run_scheduled_with(kind, sched, trace, &mut checker)?;
        Ok((stats, checker.violations().len()))
    }

    /// The scheduler-front-end (benchmark × policy) matrix through the
    /// worker pool, in deterministic job order — the scheduled
    /// counterpart of [`Experiment::run_matrix_with`].
    ///
    /// # Errors
    ///
    /// Propagates the lowest-job-index failure; worker panics surface as
    /// [`Error::WorkerPanic`].
    pub fn run_sched_matrix_with(
        &self,
        cfg: &ExecConfig,
        policies: &[PolicyKind],
        sched: SchedConfig,
    ) -> Result<(Vec<SchedCell>, PoolReport), Error> {
        let jobs: Vec<(&str, PolicyKind)> = WorkloadSpec::BENCHMARKS
            .iter()
            .flat_map(|name| policies.iter().map(move |&kind| (*name, kind)))
            .collect();
        let (result, report) = map_ordered_report(cfg, &jobs, |_, &(benchmark, kind)| {
            self.run_scheduled(kind, benchmark, sched)
                .map(|stats| SchedCell {
                    benchmark: benchmark.to_owned(),
                    policy: kind,
                    stats,
                })
        });
        Ok((result.map_err(Error::from)?, report))
    }

    /// The serial reference for [`Experiment::run_sched_matrix_with`].
    ///
    /// # Errors
    ///
    /// Propagates the first failing run's [`Error`].
    pub fn run_sched_matrix_serial(
        &self,
        policies: &[PolicyKind],
        sched: SchedConfig,
    ) -> Result<Vec<SchedCell>, Error> {
        WorkloadSpec::BENCHMARKS
            .iter()
            .flat_map(|name| policies.iter().map(move |&kind| (*name, kind)))
            .map(|(benchmark, kind)| {
                self.run_scheduled(kind, benchmark, sched)
                    .map(|stats| SchedCell {
                        benchmark: benchmark.to_owned(),
                        policy: kind,
                        stats,
                    })
            })
            .collect()
    }

    /// Runs a policy under injected faults, optionally protected by the
    /// runtime [`Guard`].
    ///
    /// Unguarded runs keep the ground-truth [`IntegrityChecker`] attached
    /// so silent data loss is visible in
    /// [`FaultedOutcome::violations`]; guarded runs report corrected /
    /// uncorrected errors through [`FaultedOutcome::guard`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownWorkload`] for an unknown benchmark name.
    pub fn run_faulted(
        &self,
        kind: PolicyKind,
        benchmark: &str,
        faults: &FaultConfig,
        guard: Option<&GuardConfig>,
    ) -> Result<FaultedOutcome, Error> {
        let trace = self.trace(benchmark)?;
        let profiled: Vec<f64> = self.profile.iter().map(|r| r.weakest_ms).collect();
        let timing = TimingParams::paper_default();
        let injector = FaultInjector::new(*faults, &profiled, timing);
        Ok(match kind {
            PolicyKind::Auto => self.faulted_run(AutoRefresh::new(64.0), trace, injector, guard),
            PolicyKind::Raidr => self.faulted_run(self.plan.raidr(), trace, injector, guard),
            PolicyKind::Vrl => self.faulted_run(self.plan.vrl(), trace, injector, guard),
            PolicyKind::VrlAccess => {
                self.faulted_run(self.plan.vrl_access(), trace, injector, guard)
            }
        })
    }

    fn faulted_run<P, I>(
        &self,
        policy: P,
        trace: I,
        injector: FaultInjector,
        guard_cfg: Option<&GuardConfig>,
    ) -> FaultedOutcome
    where
        P: AdaptivePolicy,
        I: Iterator<Item = TraceRecord>,
    {
        let timing = TimingParams::paper_default();
        let physics = ModelPhysics::new(&self.model);
        let true_retention = injector.true_retention();
        let d = self.config.duration_ms;
        let mut sim = Simulator::new(SimConfig::with_rows(self.config.rows), policy);
        sim.set_fault_injector(injector);
        if let Some(cfg) = guard_cfg {
            let mut guard = Guard::new(physics, timing, true_retention, *cfg);
            let stats = sim.run_guarded(trace, d, &mut guard);
            let faults = sim
                .fault_injector()
                .map(FaultInjector::stats)
                .unwrap_or_default();
            FaultedOutcome {
                stats,
                violations: 0,
                guard: Some(guard.stats()),
                faults,
            }
        } else {
            let mut checker = IntegrityChecker::new(physics, timing, true_retention);
            let stats = sim.run_observed(trace, d, &mut checker);
            let faults = sim
                .fault_injector()
                .map(FaultInjector::stats)
                .unwrap_or_default();
            FaultedOutcome {
                stats,
                violations: checker.violations().len(),
                guard: None,
                faults,
            }
        }
    }
}

/// Routes one run's [`SimStats`] counters through a fresh metrics
/// registry and snapshots it — the canonical stats→metrics mapping the
/// CLI `--metrics` flags and the bench binaries share.
pub fn sim_metrics(stats: &SimStats) -> MetricsSnapshot {
    let mut reg = MetricsRegistry::new();
    for (name, value) in [
        ("sim.total_cycles", stats.total_cycles),
        ("sim.refresh_busy_cycles", stats.refresh_busy_cycles),
        ("sim.full_refreshes", stats.full_refreshes),
        ("sim.partial_refreshes", stats.partial_refreshes),
        ("sim.accesses", stats.accesses),
        ("sim.row_hits", stats.row_hits),
        ("sim.row_misses", stats.row_misses),
        ("sim.stall_cycles", stats.stall_cycles),
        ("sim.postponed_refreshes", stats.postponed_refreshes),
        ("sim.dropped_refreshes", stats.dropped_refreshes),
        ("sim.delayed_refreshes", stats.delayed_refreshes),
        ("sim.scrub_accesses", stats.scrub_accesses),
        ("sim.scrub_busy_cycles", stats.scrub_busy_cycles),
        ("sim.corrected_errors", stats.corrected_errors),
        ("sim.uncorrected_errors", stats.uncorrected_errors),
    ] {
        let c = reg.counter(name);
        reg.add(c, value);
    }
    reg.snapshot()
}

/// Routes one scheduler run's [`SchedStats`] (base counters plus
/// queueing/parallelization metrics and a latency summary) through a
/// fresh metrics registry and snapshots it.
pub fn sched_metrics(stats: &SchedStats) -> MetricsSnapshot {
    let mut base = sim_metrics(&stats.sim);
    let mut reg = MetricsRegistry::new();
    for (name, value) in [
        ("sched.reordered", stats.reordered),
        ("sched.refresh_blocked_cycles", stats.refresh_blocked_cycles),
        ("sched.pulled_in_refreshes", stats.pulled_in_refreshes),
        ("sched.queue_stalls", stats.queue_stalls),
    ] {
        let c = reg.counter(name);
        reg.add(c, value);
    }
    for (name, value) in [
        ("sched.max_queue_depth", stats.max_queue_depth as u64),
        ("sched.read_latency_p50", stats.read_latency.quantile(0.5)),
        ("sched.read_latency_p99", stats.read_latency.quantile(0.99)),
        ("sched.read_latency_max", stats.read_latency.max()),
    ] {
        let g = reg.gauge(name);
        reg.set_max(g, value);
    }
    base.merge(&reg.snapshot())
        .expect("disjoint metric names cannot conflict");
    base
}

/// One cell of the (benchmark × policy) simulation matrix
/// ([`Experiment::run_matrix_with`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatrixCell {
    /// Benchmark name.
    pub benchmark: String,
    /// The policy that ran.
    pub policy: PolicyKind,
    /// The run's counters.
    pub stats: SimStats,
}

/// One cell of the scheduler-front-end simulation matrix
/// ([`Experiment::run_sched_matrix_with`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedCell {
    /// Benchmark name.
    pub benchmark: String,
    /// The policy that ran.
    pub policy: PolicyKind,
    /// The run's counters (scheduler metrics plus the base
    /// [`SimStats`]).
    pub stats: SchedStats,
}

/// One full-DIMM run assembled from per-channel scheduler shards
/// ([`Experiment::run_dimm_serial`] / [`Experiment::run_dimm_with`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DimmRun {
    /// Counters merged across every shard with
    /// [`SchedStats::merge`] — identical to the stats of one
    /// whole-DIMM [`Scheduler`] instance over the same trace.
    pub stats: SchedStats,
    /// One event stream per channel, in channel order.
    pub streams: Vec<EventStream>,
}

impl DimmRun {
    fn assemble(shards: Vec<(SchedStats, EventStream)>) -> DimmRun {
        let mut stats = SchedStats::default();
        let mut streams = Vec::with_capacity(shards.len());
        for (shard_stats, stream) in shards {
            stats = stats.merge(&shard_stats);
            streams.push(stream);
        }
        DimmRun { stats, streams }
    }

    /// Every shard's events in the deterministic `(cycle, bank, seq)`
    /// merge order — independent of how shards were packed onto
    /// workers, because each bank's events come from exactly one shard.
    pub fn merged_events(&self) -> Vec<Event> {
        merge_streams(&self.streams)
    }
}

/// The result of a fault-injected run ([`Experiment::run_faulted`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultedOutcome {
    /// Simulator counters (includes scrub and guard error tallies when
    /// guarded).
    pub stats: SimStats,
    /// Ground-truth charge violations (unguarded runs only; a guarded
    /// run reports through `guard` instead).
    pub violations: usize,
    /// Guard counters, when the guard was enabled.
    pub guard: Option<GuardStats>,
    /// What the injector actually did.
    pub faults: FaultStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Experiment {
        Experiment::new(ExperimentConfig {
            rows: 512,
            duration_ms: 512.0,
            ..Default::default()
        })
    }

    #[test]
    fn vrl_beats_raidr_beats_auto() {
        let e = small();
        let auto = e.run_policy(PolicyKind::Auto, "ferret").expect("known");
        let raidr = e.run_policy(PolicyKind::Raidr, "ferret").expect("known");
        let vrl = e.run_policy(PolicyKind::Vrl, "ferret").expect("known");
        assert!(raidr.refresh_busy_cycles < auto.refresh_busy_cycles);
        assert!(vrl.refresh_busy_cycles < raidr.refresh_busy_cycles);
    }

    #[test]
    fn vrl_access_beats_vrl_on_covering_workloads() {
        let e = small();
        let row = e.compare("bgsave").expect("known");
        assert!(
            row.vrl_access_cycles < row.vrl_cycles,
            "bgsave touches every row: {row:?}"
        );
    }

    #[test]
    fn unknown_benchmark_is_an_error_listing_alternatives() {
        let e = small();
        let err = e.run_policy(PolicyKind::Vrl, "nope").unwrap_err();
        match &err {
            Error::UnknownWorkload { requested, known } => {
                assert_eq!(requested, "nope");
                assert!(known.iter().any(|k| k == "ferret"));
            }
            other => panic!("unexpected error: {other:?}"),
        }
        assert!(e.compare("nope").is_err());
        assert!(e.run_checked(PolicyKind::Vrl, "nope").is_err());
    }

    #[test]
    fn sched_config_requires_an_even_power_of_two_split() {
        let e = small();
        let cfg = e.sched_config(4).expect("512 rows over 4 banks");
        assert_eq!(cfg.banks(), 4);
        assert_eq!(cfg.total_rows(), 512);
        assert!(e.sched_config(0).is_err());
        assert!(e.sched_config(3).is_err());
    }

    #[test]
    fn scheduled_front_end_matches_frfcfs_with_one_bank() {
        // The degenerate scheduler (1 bank, no parallelism) must agree
        // with the FR-FCFS controller through the experiment plumbing
        // too, not just at the engine level.
        let e = small();
        let sched = e
            .sched_config(1)
            .expect("one bank")
            .with_parallelism(false)
            .with_slack(0)
            .with_queue_depth(32);
        for kind in PolicyKind::ALL {
            let s = e.run_scheduled(kind, "ferret", sched).expect("known");
            let c = e.run_frfcfs(kind, "ferret", 32).expect("known");
            assert_eq!(s.sim, c.sim, "{} diverged", kind.name());
            assert_eq!(s.reordered, c.reordered);
        }
    }

    #[test]
    fn sched_matrix_is_deterministic_across_pool_shapes() {
        let e = Experiment::new(ExperimentConfig {
            rows: 256,
            duration_ms: 128.0,
            ..Default::default()
        });
        let sched = e.sched_config(4).expect("4 banks");
        let policies = [PolicyKind::Vrl, PolicyKind::VrlAccess];
        let serial = e
            .run_sched_matrix_serial(&policies, sched)
            .expect("serial matrix");
        for workers in [1, 2, 5] {
            let (cells, _) = e
                .run_sched_matrix_with(&ExecConfig::new(workers), &policies, sched)
                .expect("pooled matrix");
            assert_eq!(cells, serial, "{workers}-worker pool diverged");
        }
    }

    #[test]
    fn scheduled_parallelism_is_integrity_clean() {
        let e = Experiment::new(ExperimentConfig {
            rows: 256,
            duration_ms: 256.0,
            ..Default::default()
        });
        let sched = e.sched_config(4).expect("4 banks");
        let (stats, violations) = e
            .run_scheduled_checked(PolicyKind::VrlAccess, "ferret", sched)
            .expect("known");
        assert_eq!(violations, 0, "parallelized refreshes must stay sound");
        assert!(stats.sim.total_refreshes() > 0);
    }

    #[test]
    fn dimm_config_requires_an_even_power_of_two_split() {
        let e = small();
        let cfg = e.dimm_config(2, 2, 4).expect("512 rows over 16 banks");
        assert_eq!(cfg.channels(), 2);
        assert_eq!(cfg.ranks(), 2);
        assert_eq!(cfg.banks(), 16);
        assert_eq!(cfg.total_rows(), 512);
        assert!(e.dimm_config(0, 1, 4).is_err());
        assert!(e.dimm_config(3, 1, 1).is_err());
    }

    #[test]
    fn dimm_shards_match_the_whole_dimm_across_pool_shapes() {
        let e = Experiment::new(ExperimentConfig {
            rows: 512,
            duration_ms: 128.0,
            ..Default::default()
        });
        let sched = e.dimm_config(2, 2, 4).expect("16 banks");
        let whole = e
            .run_scheduled(PolicyKind::VrlAccess, "ferret", sched)
            .expect("known");
        let serial = e
            .run_dimm_serial(PolicyKind::VrlAccess, "ferret", sched)
            .expect("known");
        assert_eq!(
            serial.stats, whole,
            "merged shard stats must equal the single whole-DIMM instance"
        );
        assert_eq!(serial.streams.len(), 2);
        for workers in [1, 2, 5] {
            let pooled = e
                .run_dimm_with(
                    &ExecConfig::new(workers),
                    PolicyKind::VrlAccess,
                    "ferret",
                    sched,
                )
                .expect("known");
            assert_eq!(pooled, serial, "{workers}-worker pool diverged");
        }
        let merged = serial.merged_events();
        assert!(!merged.is_empty());
        assert!(merged
            .windows(2)
            .all(|w| w[0].merge_key() <= w[1].merge_key()));
        assert!(merged.iter().any(|ev| ev.bank >= sched.banks_per_channel()));
        assert!(merged.iter().all(|ev| ev.bank < sched.banks()));
    }

    #[test]
    fn faulted_run_reports_injector_activity() {
        let e = small();
        let faults = FaultConfig::default_scenario(7);
        let out = e
            .run_faulted(PolicyKind::Vrl, "ferret", &faults, None)
            .expect("known");
        assert!(out.guard.is_none());
        assert!(out.faults.optimistic_rows > 0 || out.faults.vrt_rows > 0);
        assert!(out.stats.total_cycles > 0);
    }

    #[test]
    fn guarded_run_reports_guard_stats() {
        let e = small();
        let faults = FaultConfig::default_scenario(7);
        let out = e
            .run_faulted(
                PolicyKind::Vrl,
                "ferret",
                &faults,
                Some(&GuardConfig::default()),
            )
            .expect("known");
        let guard = out.guard.expect("guard stats");
        assert_eq!(out.violations, 0);
        assert_eq!(guard.uncorrected, 0, "guard must not lose data: {guard:?}");
        assert!(out.stats.scrub_accesses > 0);
    }

    #[test]
    fn vrl_plan_is_integrity_safe() {
        let e = small();
        let (_, violations) = e.run_checked(PolicyKind::Vrl, "swaptions").expect("known");
        assert_eq!(violations, 0, "the computed MPRSF must never lose data");
    }

    #[test]
    fn vrl_access_plan_is_integrity_safe() {
        let e = small();
        let (_, violations) = e
            .run_checked(PolicyKind::VrlAccess, "bgsave")
            .expect("known");
        assert_eq!(violations, 0);
    }

    #[test]
    fn normalized_values_are_consistent() {
        let e = small();
        let row = e.compare("vips").expect("known");
        assert!(row.vrl_normalized > 0.5 && row.vrl_normalized < 1.0);
        assert!(row.vrl_access_normalized <= row.vrl_normalized + 1e-9);
        assert!(row.vrl_access_refresh_mw < row.raidr_refresh_mw);
    }

    #[test]
    fn compare_all_propagates_errors_instead_of_dropping() {
        // An experiment whose matrix contains a failing job must surface
        // the error, not return a shorter Vec. `run_matrix_with` is the
        // machinery `compare_all` sits on; drive it directly with a bad
        // job via run_policy on an unknown name.
        let e = small();
        let err = e.run_policy(PolicyKind::Vrl, "nope").unwrap_err();
        assert!(matches!(err, Error::UnknownWorkload { .. }));
        // All benchmark names are known, so the happy path returns every
        // row — one per benchmark, in Figure 4 order.
        let rows = e.compare_all().expect("all benchmarks known");
        assert_eq!(rows.len(), WorkloadSpec::BENCHMARKS.len());
        for (row, name) in rows.iter().zip(WorkloadSpec::BENCHMARKS) {
            assert_eq!(row.benchmark, name);
        }
    }

    #[test]
    fn parallel_compare_matches_serial_for_one_seed() {
        // The cross-seed sweep lives in tests/parallel_exec.rs; this is
        // the fast in-crate smoke version.
        let e = Experiment::new(ExperimentConfig {
            rows: 128,
            duration_ms: 64.0,
            ..Default::default()
        });
        let serial = e.compare_all_serial().expect("serial path");
        let parallel = e
            .compare_all_with(&vrl_exec::ExecConfig::new(4))
            .expect("parallel path");
        assert_eq!(serial, parallel);
    }

    #[test]
    fn matrix_cells_come_back_benchmark_major() {
        let e = Experiment::new(ExperimentConfig {
            rows: 64,
            duration_ms: 64.0,
            ..Default::default()
        });
        let policies = [PolicyKind::Raidr, PolicyKind::Vrl];
        let (cells, report) = e
            .run_matrix_with(&vrl_exec::ExecConfig::new(2), &policies)
            .expect("known benchmarks");
        assert_eq!(cells.len(), WorkloadSpec::BENCHMARKS.len() * 2);
        assert_eq!(report.jobs, cells.len());
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.benchmark, WorkloadSpec::BENCHMARKS[i / 2]);
            assert_eq!(cell.policy, policies[i % 2]);
        }
        let serial = e.run_matrix_serial(&policies).expect("serial matrix");
        assert_eq!(cells, serial);
    }

    #[test]
    fn traced_runs_match_untraced_and_capture_events() {
        use vrl_obs::EventKind;
        let e = Experiment::new(ExperimentConfig {
            rows: 256,
            duration_ms: 128.0,
            ..Default::default()
        });
        let sched = e.sched_config(4).expect("4 banks");
        let plain = e
            .run_scheduled(PolicyKind::VrlAccess, "bgsave", sched)
            .expect("known");
        let (traced, stream) = e
            .run_scheduled_traced(PolicyKind::VrlAccess, "bgsave", sched)
            .expect("known");
        assert_eq!(plain, traced, "recording must not perturb the run");
        assert_eq!(stream.policy, "vrl-access");
        assert!(!stream.events.is_empty());
        let activations = stream
            .events
            .iter()
            .filter(|ev| ev.kind == EventKind::Activate)
            .count() as u64;
        assert_eq!(activations, traced.sim.row_misses);
        // Banks are derived from the scheduler's address map.
        assert!(stream.events.iter().any(|ev| ev.bank > 0));
        assert!(stream.events.iter().all(|ev| ev.bank < sched.banks()));
    }

    #[test]
    fn metrics_snapshots_mirror_the_stats() {
        let e = Experiment::new(ExperimentConfig {
            rows: 128,
            duration_ms: 64.0,
            ..Default::default()
        });
        let sched = e.sched_config(4).expect("4 banks");
        let stats = e
            .run_scheduled(PolicyKind::Vrl, "ferret", sched)
            .expect("known");
        let snap = sched_metrics(&stats);
        assert_eq!(snap.counter("sim.accesses"), stats.sim.accesses);
        assert_eq!(
            snap.counter("sim.partial_refreshes"),
            stats.sim.partial_refreshes
        );
        assert_eq!(
            snap.gauge("sched.max_queue_depth"),
            stats.max_queue_depth as u64
        );
        // Merging per-benchmark snapshots sums the counters.
        let merged = MetricsSnapshot::merged([&snap, &snap]).expect("same shapes");
        assert_eq!(merged.counter("sim.accesses"), 2 * stats.sim.accesses);
    }

    #[test]
    fn cloned_experiments_share_the_plan() {
        let e = small();
        let clone = e.clone();
        assert!(std::ptr::eq(e.plan(), clone.plan()), "plan must be shared");
        assert!(Arc::ptr_eq(&e.plan_shared(), &clone.plan_shared()));
    }
}
