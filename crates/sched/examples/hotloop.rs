//! Scratch hot-loop meter: replays a materialized bursty trace through
//! the SoA scheduler and the reference engine and prints wall time per
//! event for each. Used to compare engine throughput without trace
//! generation in the timed region.

use vrl_dram_sim::policy::{RefreshPolicy, VrlAccess};
use vrl_retention::binning::BinningTable;
use vrl_retention::profile::BankProfile;
use vrl_sched::{ReferenceScheduler, SchedConfig, Scheduler};
use vrl_trace::{Op, TraceRecord, Workload, WorkloadSpec};

fn bursts(until: u64, rows: u32) -> Vec<TraceRecord> {
    const GAP: u64 = 1 << 18;
    const BURST_LEN: u64 = 256;
    let mut records = Vec::new();
    let mut cycle = 0u64;
    let mut row = 0u32;
    while cycle < until {
        for i in 0..BURST_LEN {
            let op = if i % 3 == 0 { Op::Write } else { Op::Read };
            records.push(TraceRecord::new(cycle + i * 4, op, row % rows));
            row = row.wrapping_add(7);
        }
        cycle += GAP;
    }
    records
}

fn vrl_access(rows: usize) -> VrlAccess {
    let retention = (0..rows).map(|r| match r % 4 {
        0 => 64.0,
        1 => 128.0,
        _ => 256.0,
    });
    let bins = BinningTable::from_profile(&BankProfile::from_rows(retention, 32));
    let mprsf = (0..rows).map(|r| (r % 4) as u8).collect();
    VrlAccess::new(bins, mprsf)
}

fn measure<P: RefreshPolicy, F: Fn() -> P>(
    label: &str,
    config: SchedConfig,
    trace: &[TraceRecord],
    duration_ms: f64,
    make_policy: F,
) {
    for _ in 0..3 {
        let t0 = std::time::Instant::now();
        let mut engine = Scheduler::new(config, make_policy()).expect("config");
        let soa = engine
            .run(trace.iter().copied(), duration_ms)
            .expect("soa run");
        let soa_wall = t0.elapsed().as_secs_f64();

        let t0 = std::time::Instant::now();
        let mut engine = ReferenceScheduler::new(config, make_policy()).expect("config");
        let reference = engine
            .run(trace.iter().copied(), duration_ms)
            .expect("reference run");
        let reference_wall = t0.elapsed().as_secs_f64();

        assert_eq!(soa, reference, "engines diverged");
        let events = soa.sim.events();
        println!(
            "{label}: {events} events, soa {:.3}s ({:.0} ns/ev), reference {:.3}s \
             ({:.0} ns/ev), ratio {:.2}x",
            soa_wall,
            soa_wall * 1e9 / events as f64,
            reference_wall,
            reference_wall * 1e9 / events as f64,
            reference_wall / soa_wall,
        );
    }
}

fn main() {
    let duration_ms = 192.0;
    let config = SchedConfig::with_dimm_geometry(2, 2, 16, 16)
        .expect("geometry")
        .with_parallelism(true);
    let end = config.timing.ms_to_cycles(duration_ms);
    let trace = bursts(end, config.total_rows());
    let rows = config.total_rows() as usize;
    measure("bursty/vrl-access", config, &trace, duration_ms, || {
        vrl_access(rows)
    });

    let duration_ms = 128.0;
    let rows = 1024u32;
    let config = SchedConfig::with_dimm_geometry(2, 2, 16, rows / 64).expect("geometry");
    for benchmark in ["canneal", "ferret", "streamcluster"] {
        let spec = WorkloadSpec::parsec(benchmark).expect("benchmark");
        let trace: Vec<TraceRecord> = Workload::new(spec, rows, 42).records(duration_ms).collect();
        measure(benchmark, config, &trace, duration_ms, || {
            vrl_access(rows as usize)
        });
    }
}
