//! The reference scheduler: the original per-bank-heap implementation.
//!
//! This is the pre-SoA architecture of [`crate::sched::Scheduler`] kept
//! as an executable specification and performance baseline: one heap
//! object per bank (`BankState` + its own timing wheel behind a pointer
//! each), a `VecDeque` four-activate window, one-record-per-iteration
//! trace admission, eager `on_activate` delivery, and `O(banks)` /
//! `O(banks × queue)` scans per scheduling decision. Channels are
//! simulated **sequentially** over channel-filtered sub-traces — the
//! semantics channel independence guarantees, with none of the
//! struct-of-arrays or sharding machinery.
//!
//! `tests/controller_equivalence.rs` holds the SoA scheduler
//! bit-identical to this engine across policies, traces, and DIMM
//! geometries, and `bench_throughput`'s full-DIMM leg measures the SoA
//! rewrite's speedup against it.

use std::collections::VecDeque;

use vrl_trace::{Op, TraceRecord};

use vrl_dram_sim::bank::BankState;
use vrl_dram_sim::error::Error;
use vrl_dram_sim::policy::RefreshPolicy;
use vrl_dram_sim::timing::{RefreshLatency, TimingParams};
use vrl_dram_sim::wheel::RefreshQueue;

use crate::config::SchedConfig;
use crate::stats::SchedStats;

/// One bank's scheduling state: the bank machine plus its refresh wheel.
struct BankLane {
    state: BankState,
    refreshes: RefreshQueue,
}

/// A queued request, steered to its global bank on admission.
#[derive(Clone, Copy)]
struct Pending {
    record: TraceRecord,
    bank: u32,
    row: u32,
}

/// Per-rank activate bookkeeping: `tRRD`, the `tFAW` window, and the
/// `tRFC` refresh-start spacing all scope to one rank.
#[derive(Default)]
struct RankState {
    last_act: Option<(u64, u32)>,
    recent_acts: VecDeque<u64>,
    last_refresh: Option<u64>,
}

/// Per-channel shared-bus arbitration state.
struct BusState {
    last_cmd: Option<u64>,
    last_cas: Option<(u64, u32, bool)>,
    ranks: Vec<RankState>,
}

impl BusState {
    fn new(ranks: usize) -> Self {
        BusState {
            last_cmd: None,
            last_cas: None,
            ranks: (0..ranks).map(|_| RankState::default()).collect(),
        }
    }

    fn act_bound(&self, mut start: u64, rank: usize, bank: u32, timing: &TimingParams) -> u64 {
        let r = &self.ranks[rank];
        if let Some((at, b)) = r.last_act {
            if b != bank {
                start = start.max(at + timing.trrd);
            }
        }
        if r.recent_acts.len() == 4 {
            start = start.max(r.recent_acts[0] + timing.tfaw);
        }
        start
    }

    fn cas_bound(
        &self,
        start: u64,
        cas_offset: u64,
        bank: u32,
        is_write: bool,
        timing: &TimingParams,
    ) -> u64 {
        if let Some((at, b, was_write)) = self.last_cas {
            if b != bank {
                let gap = timing.tccd
                    + if was_write != is_write {
                        timing.bus_turnaround
                    } else {
                        0
                    };
                let bound = at + gap;
                if start + cas_offset < bound {
                    return bound - cas_offset;
                }
            }
        }
        start
    }

    fn claim_cmd(&mut self, start: u64) -> u64 {
        let at = match self.last_cmd {
            Some(c) if start <= c => c + 1,
            _ => start,
        };
        self.last_cmd = Some(at);
        at
    }

    fn note_act(&mut self, at: u64, rank: usize, bank: u32) {
        let r = &mut self.ranks[rank];
        r.last_act = Some((at, bank));
        r.recent_acts.push_back(at);
        if r.recent_acts.len() > 4 {
            r.recent_acts.pop_front();
        }
    }

    fn note_cas(&mut self, at: u64, bank: u32, is_write: bool) {
        self.last_cas = Some((at, bank, is_write));
    }
}

/// The per-bank-heap reference scheduler (see the module docs).
pub struct ReferenceScheduler<P: RefreshPolicy> {
    config: SchedConfig,
    policy: P,
}

impl<P: RefreshPolicy> std::fmt::Debug for ReferenceScheduler<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReferenceScheduler")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl<P: RefreshPolicy> ReferenceScheduler<P> {
    /// Creates the reference engine.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the queue depth is zero.
    pub fn new(config: SchedConfig, policy: P) -> Result<Self, Error> {
        if config.queue_depth == 0 {
            return Err(Error::InvalidConfig {
                reason: "scheduler queue must hold at least one request".into(),
            });
        }
        Ok(ReferenceScheduler { config, policy })
    }

    /// Runs the trace for `duration_ms`, one channel at a time.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] if an internal scheduling invariant breaks.
    pub fn run<I: IntoIterator<Item = TraceRecord>>(
        &mut self,
        trace: I,
        duration_ms: f64,
    ) -> Result<SchedStats, Error> {
        let config = self.config;
        let end = config.timing.ms_to_cycles(duration_ms);
        let channels = config.channels() as usize;
        let banks_per_channel = config.banks_per_channel() as usize;

        // Steer every record up front and split by owning channel.
        let mut per_channel: Vec<Vec<Pending>> = vec![Vec::new(); channels];
        for record in trace.into_iter().take_while(|r| r.cycle < end) {
            let (bank, row) = config.steer(record.row);
            per_channel[bank as usize / banks_per_channel].push(Pending { record, bank, row });
        }

        let mut stats = SchedStats {
            per_bank_refreshes: vec![0; config.banks() as usize],
            per_bank_accesses: vec![0; config.banks() as usize],
            ..SchedStats::default()
        };
        let mut max_busy = 0u64;
        for (c, records) in per_channel.into_iter().enumerate() {
            let busy = run_channel(&config, &mut self.policy, &mut stats, c, records, end)?;
            max_busy = max_busy.max(busy);
        }
        stats.sim.total_cycles = end.max(max_busy);
        Ok(stats)
    }
}

/// Runs one channel's scheduling loop to completion, returning the
/// channel's final maximum bank occupancy.
fn run_channel<P: RefreshPolicy>(
    config: &SchedConfig,
    policy: &mut P,
    stats: &mut SchedStats,
    channel: usize,
    records: Vec<Pending>,
    end: u64,
) -> Result<u64, Error> {
    let timing = config.timing;
    let banks_per_channel = config.banks_per_channel() as usize;
    let banks_per_rank = config.banks_per_rank() as usize;
    let first_bank = channel * banks_per_channel;
    let rank_of = |bank: u32| (bank as usize / banks_per_rank) % config.ranks() as usize;

    let mut lanes: Vec<BankLane> = Vec::with_capacity(banks_per_channel);
    for local in 0..banks_per_channel {
        let bank = (first_bank + local) as u32;
        let mut refreshes = RefreshQueue::new();
        for row in 0..config.rows_per_bank() {
            let global = config.global_row(bank, row);
            let period = timing.ms_to_cycles(policy.period_ms(global));
            let offset = if config.staggered {
                (global as u64).wrapping_mul(2654435761) % period.max(1)
            } else {
                0
            };
            refreshes.push(offset, row, offset);
        }
        lanes.push(BankLane {
            state: BankState::new(),
            refreshes,
        });
    }
    let mut bus = BusState::new(config.ranks() as usize);
    let mut queue: VecDeque<Pending> = VecDeque::new();
    let mut trace = records.into_iter().peekable();
    let mut now = 0u64;
    let mut last_stall: Option<u64> = None;

    // One refresh on `bank` issuing at (or just after) `issue_at`.
    let execute_refresh = |lanes: &mut Vec<BankLane>,
                           bus: &mut BusState,
                           policy: &mut P,
                           stats: &mut SchedStats,
                           bank: usize,
                           issue_at: u64,
                           row: u32,
                           original_due: u64,
                           contended: bool| {
        let global_bank = (first_bank + bank) as u32;
        let rank = rank_of(global_bank);
        let lane = &mut lanes[bank];
        let mut start = lane.state.ready_at(issue_at);
        if let Some(last) = bus.ranks[rank].last_refresh {
            start = start.max(last + timing.trfc);
        }
        start = bus.claim_cmd(start);
        bus.ranks[rank].last_refresh = Some(start);
        let mut duration = 0;
        if lane.state.open_row().is_some() {
            lane.state.precharge();
            duration += timing.trp;
        }
        let global = config.global_row(global_bank, row);
        let kind = policy.refresh_kind(global);
        let refresh_cycles = timing.refresh_cycles(kind);
        duration += refresh_cycles;
        lane.state.occupy(start, duration);
        stats.sim.refresh_busy_cycles += refresh_cycles;
        if contended {
            stats.refresh_blocked_cycles += refresh_cycles;
        }
        match kind {
            RefreshLatency::Full => stats.sim.full_refreshes += 1,
            RefreshLatency::Partial => stats.sim.partial_refreshes += 1,
        }
        stats.per_bank_refreshes[global_bank as usize] += 1;
        let period = timing.ms_to_cycles(policy.period_ms(global)).max(1);
        let next = original_due + period;
        lane.refreshes.push(next, row, next);
    };

    loop {
        let min_ready = lanes
            .iter()
            .map(|l| l.state.ready_at(now))
            .min()
            .unwrap_or(now);
        now = now.max(min_ready);

        // Admit arrivals that have happened by `now`.
        while queue.len() < config.queue_depth {
            match trace.peek() {
                Some(p) if p.record.cycle <= now => {
                    queue.push_back(*p);
                    trace.next();
                }
                _ => break,
            }
        }
        stats.max_queue_depth = stats.max_queue_depth.max(queue.len());
        if queue.len() == config.queue_depth
            && trace.peek().is_some_and(|p| p.record.cycle <= now)
            && last_stall != Some(now)
        {
            last_stall = Some(now);
            stats.queue_stalls += 1;
        }

        // Refreshes due by `now` on free banks.
        let refreshed = {
            let horizon = now.saturating_add(1).min(end);
            let mut fired = false;
            loop {
                let mut best: Option<(u64, usize)> = None;
                for (b, lane) in lanes.iter_mut().enumerate() {
                    if lane.state.ready_at(now) != now {
                        continue;
                    }
                    if let Some(due) = lane.refreshes.next_due() {
                        if due < horizon && best.is_none_or(|(d, _)| due < d) {
                            best = Some((due, b));
                        }
                    }
                }
                let Some((_, bank)) = best else {
                    break;
                };
                let (due, row, original_due) = lanes[bank]
                    .refreshes
                    .pop_due_before(horizon)
                    .ok_or(Error::SchedulerStalled { cycle: now })?;
                let global_bank = (first_bank + bank) as u32;
                let contended = queue.iter().any(|p| p.bank == global_bank);
                if config.parallel_refresh && contended {
                    let deadline = original_due.saturating_add(config.slack);
                    if now < deadline {
                        let step = (config.slack / 8).max(timing.tau_full).max(1);
                        let retry = (now + step).min(deadline).max(now + 1);
                        lanes[bank].refreshes.push(retry, row, original_due);
                        stats.sim.postponed_refreshes += 1;
                        continue;
                    }
                }
                execute_refresh(
                    &mut lanes,
                    &mut bus,
                    policy,
                    stats,
                    bank,
                    now.max(due),
                    row,
                    original_due,
                    contended,
                );
                fired = true;
                break;
            }
            fired
        };
        if refreshed {
            continue;
        }

        // FR-FCFS demand on free banks: the oldest hitting its bank's
        // open row, else the oldest on a free bank.
        let local = |p: &Pending| p.bank as usize - first_bank;
        let free = |lanes: &[BankLane], p: &Pending| lanes[local(p)].state.ready_at(now) == now;
        let pick = queue
            .iter()
            .position(|p| free(&lanes, p) && lanes[local(p)].state.open_row() == Some(p.row))
            .or_else(|| queue.iter().position(|p| free(&lanes, p)));
        if let Some(idx) = pick {
            if idx != 0 {
                stats.reordered += 1;
            }
            let len = queue.len();
            let pending = queue
                .remove(idx)
                .ok_or(Error::QueueIndexInvalid { index: idx, len })?;
            // Service the request.
            let bank = local(&pending);
            let rank = rank_of(pending.bank);
            let hit = lanes[bank].state.open_row() == Some(pending.row);
            let latency = if hit {
                timing.hit_latency()
            } else if lanes[bank].state.open_row().is_some() {
                timing.miss_latency()
            } else {
                timing.trcd + timing.tcl
            };
            let cas_offset = latency - timing.tcl;
            let is_write = pending.record.op == Op::Write;

            let mut start = lanes[bank].state.ready_at(now);
            if !hit {
                start = bus.act_bound(start, rank, pending.bank, &timing);
            }
            start = bus.cas_bound(start, cas_offset, pending.bank, is_write, &timing);
            start = bus.claim_cmd(start);

            stats.sim.stall_cycles += start - pending.record.cycle;
            stats.sim.accesses += 1;
            stats.per_bank_accesses[pending.bank as usize] += 1;
            if hit {
                stats.sim.row_hits += 1;
            } else {
                stats.sim.row_misses += 1;
            }
            let done = lanes[bank].state.occupy(start, latency);
            if !hit {
                lanes[bank].state.set_open_row(pending.row);
                policy.on_activate(config.global_row(pending.bank, pending.row));
                bus.note_act(start, rank, pending.bank);
            }
            bus.note_cas(start + cas_offset, pending.bank, is_write);
            if pending.record.op == Op::Read {
                stats.read_latency.record(done - pending.record.cycle);
            }
            continue;
        }

        // Idle banks pull upcoming refreshes in early.
        let upcoming = trace.peek().map(|p| p.record.cycle);
        let pulled_in = 'pull: {
            if !config.parallel_refresh || config.slack == 0 {
                break 'pull false;
            }
            if upcoming.is_some_and(|a| a < now + timing.tau_full) {
                break 'pull false;
            }
            let horizon = now.saturating_add(config.slack).saturating_add(1).min(end);
            for bank in 0..lanes.len() {
                if lanes[bank].state.ready_at(now) != now {
                    continue;
                }
                let global_bank = (first_bank + bank) as u32;
                if queue.iter().any(|p| p.bank == global_bank) {
                    continue;
                }
                if let Some((_, row, original_due)) = lanes[bank].refreshes.pop_due_before(horizon)
                {
                    stats.pulled_in_refreshes += 1;
                    execute_refresh(
                        &mut lanes,
                        &mut bus,
                        policy,
                        stats,
                        bank,
                        now,
                        row,
                        original_due,
                        false,
                    );
                    break 'pull true;
                }
            }
            false
        };
        if pulled_in {
            continue;
        }

        // Advance to the next arrival, refresh deadline, or bank release.
        let next_arrival = upcoming.filter(|_| queue.len() < config.queue_depth);
        let next_refresh = lanes
            .iter_mut()
            .filter_map(|l| {
                let due = l.refreshes.next_due()?;
                (due < end).then(|| due.max(l.state.busy_until()))
            })
            .min();
        let next_release = lanes
            .iter()
            .enumerate()
            .filter(|(b, lane)| {
                lane.state.busy_until() > now
                    && queue.iter().any(|p| p.bank as usize == first_bank + *b)
            })
            .map(|(_, lane)| lane.state.busy_until())
            .min();
        match [next_arrival, next_refresh, next_release]
            .into_iter()
            .flatten()
            .min()
        {
            Some(t) if t > now => now = t,
            Some(_) => return Err(Error::SchedulerStalled { cycle: now }),
            None => {
                return Ok(lanes
                    .iter()
                    .map(|l| l.state.busy_until())
                    .max()
                    .unwrap_or(0))
            }
        }
    }
}
