//! Scheduler statistics: the base simulator counters plus queueing,
//! bus, and refresh-parallelization metrics.

use serde::{Deserialize, Serialize};

use vrl_dram_sim::stats::SimStats;

/// A log2-bucketed latency histogram.
///
/// Bucket `i` counts samples with `floor(log2(latency)) == i - 1`
/// (bucket 0 holds zero-latency samples), so the whole `u64` range fits
/// in 65 buckets while the short-latency end keeps cycle-level
/// resolution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    total: u64,
    max: u64,
}

impl LatencyHistogram {
    const BUCKETS: usize = 65;

    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; Self::BUCKETS],
            count: 0,
            total: 0,
            max: 0,
        }
    }

    /// Records one latency sample (cycles).
    pub fn record(&mut self, latency: u64) {
        let bucket = (64 - latency.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total = self.total.saturating_add(latency);
        self.max = self.max.max(latency);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency over all samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`), or 0 for an empty histogram. Bucketed, so the
    /// answer is exact only up to the bucket's power-of-two width.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_bound(i);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(upper_bound, count)` pairs, for
    /// serialization-friendly reporting.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_bound(i), n))
            .collect()
    }

    /// Inclusive upper bound of bucket `i` (saturating at the top).
    fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            (1u64 << (i - 1)).saturating_mul(2)
        }
    }

    /// Folds another histogram's samples into this one. Bucketed
    /// histograms merge exactly: the result equals recording both
    /// sample sets into one histogram, in any order.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.total = self.total.saturating_add(other.total);
        self.max = self.max.max(other.max);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl vrl_snap::Snapshot for LatencyHistogram {
    fn save(&self, enc: &mut vrl_snap::Encoder) {
        self.buckets.save(enc);
        enc.put_u64(self.count);
        enc.put_u64(self.total);
        enc.put_u64(self.max);
    }

    fn load(dec: &mut vrl_snap::Decoder<'_>) -> Result<Self, vrl_snap::SnapError> {
        let buckets = Vec::<u64>::load(dec)?;
        if buckets.len() != Self::BUCKETS {
            return Err(vrl_snap::SnapError::Malformed {
                what: format!(
                    "histogram needs {} buckets, got {}",
                    Self::BUCKETS,
                    buckets.len()
                ),
            });
        }
        Ok(LatencyHistogram {
            buckets,
            count: dec.take_u64()?,
            total: dec.take_u64()?,
            max: dec.take_u64()?,
        })
    }
}

/// Statistics of one scheduler run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedStats {
    /// The base simulator counters, aggregated across all banks. Feeds
    /// the same throughput meter ([`SimStats::events`],
    /// [`SimStats::throughput`]) as the single-bank engines.
    pub sim: SimStats,
    /// Requests serviced ahead of an older queued request.
    pub reordered: u64,
    /// Maximum request-queue occupancy observed.
    pub max_queue_depth: usize,
    /// Refresh cycles executed on a bank that had demand requests
    /// queued against it at issue time — the demand-visible slice of
    /// `sim.refresh_busy_cycles`. Refresh-access parallelization exists
    /// to drive this toward zero.
    pub refresh_blocked_cycles: u64,
    /// Refreshes executed ahead of their deadline on an idle bank.
    pub pulled_in_refreshes: u64,
    /// Cycles at which the full request queue held back a pending
    /// arrival (each stalled cycle counted once).
    pub queue_stalls: u64,
    /// Queue-to-completion latency of every read request.
    pub read_latency: LatencyHistogram,
    /// Refreshes executed per bank.
    pub per_bank_refreshes: Vec<u64>,
    /// Accesses serviced per bank.
    pub per_bank_accesses: Vec<u64>,
}

impl SchedStats {
    /// Combines the statistics of channel shards that simulated the
    /// same wall of cycles concurrently (see
    /// [`Scheduler::for_channel`](crate::sched::Scheduler::for_channel)).
    ///
    /// Every event counter sums; the per-bank vectors (full-DIMM sized
    /// in every shard, indexed by global bank) add elementwise; the
    /// occupancy high-water mark takes the max. `total_cycles` also
    /// takes the **max** — shards cover the same simulated interval,
    /// so summing (what [`SimStats::accumulate`] does for sequential
    /// runs) would double-count time.
    #[must_use]
    pub fn merge(mut self, other: &SchedStats) -> SchedStats {
        let total_cycles = self.sim.total_cycles.max(other.sim.total_cycles);
        self.sim.accumulate(&other.sim);
        self.sim.total_cycles = total_cycles;
        self.reordered += other.reordered;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
        self.refresh_blocked_cycles += other.refresh_blocked_cycles;
        self.pulled_in_refreshes += other.pulled_in_refreshes;
        self.queue_stalls += other.queue_stalls;
        self.read_latency.merge(&other.read_latency);
        for (vec, theirs) in [
            (&mut self.per_bank_refreshes, &other.per_bank_refreshes),
            (&mut self.per_bank_accesses, &other.per_bank_accesses),
        ] {
            if vec.len() < theirs.len() {
                vec.resize(theirs.len(), 0);
            }
            for (mine, n) in vec.iter_mut().zip(theirs) {
                *mine += n;
            }
        }
        self
    }
}

impl vrl_snap::Snapshot for SchedStats {
    fn save(&self, enc: &mut vrl_snap::Encoder) {
        self.sim.save(enc);
        enc.put_u64(self.reordered);
        enc.put_usize(self.max_queue_depth);
        enc.put_u64(self.refresh_blocked_cycles);
        enc.put_u64(self.pulled_in_refreshes);
        enc.put_u64(self.queue_stalls);
        self.read_latency.save(enc);
        self.per_bank_refreshes.save(enc);
        self.per_bank_accesses.save(enc);
    }

    fn load(dec: &mut vrl_snap::Decoder<'_>) -> Result<Self, vrl_snap::SnapError> {
        Ok(SchedStats {
            sim: SimStats::load(dec)?,
            reordered: dec.take_u64()?,
            max_queue_depth: dec.take_usize()?,
            refresh_blocked_cycles: dec.take_u64()?,
            pulled_in_refreshes: dec.take_u64()?,
            queue_stalls: dec.take_u64()?,
            read_latency: LatencyHistogram::load(dec)?,
            per_bank_refreshes: Vec::<u64>::load(dec)?,
            per_bank_accesses: Vec::<u64>::load(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = LatencyHistogram::new();
        for lat in [0, 1, 2, 3, 4, 1000, u64::MAX] {
            h.record(lat);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), u64::MAX);
        let buckets = h.nonzero_buckets();
        // 0 → bucket 0; 1 → (0,1]; 2,3 → (1,2]... bound 4; etc.
        assert_eq!(buckets[0], (0, 1));
        assert_eq!(buckets[1], (2, 1));
        assert_eq!(buckets[2], (4, 2));
        assert_eq!(buckets[3], (8, 1));
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(5); // bucket bound 8
        }
        h.record(1_000_000);
        assert_eq!(h.quantile(0.5), 8);
        assert!(h.quantile(0.999) > 8);
        assert_eq!(LatencyHistogram::new().quantile(0.5), 0);
    }

    #[test]
    fn mean_tracks_the_total() {
        let mut h = LatencyHistogram::new();
        h.record(10);
        h.record(30);
        assert!((h.mean() - 20.0).abs() < 1e-12);
    }
}
