//! Cycle-accurate full-DIMM DDR command scheduler: channels × ranks ×
//! banks.
//!
//! Sits between the trace front end ([`vrl_trace`]) and the bank/policy
//! machinery of [`vrl_dram_sim`]: requests are steered through an
//! [`vrl_trace::addr::AddressMap`] to per-bank command FSMs, arbitrated
//! over per-channel command/data buses under rank-scoped (`tRRD`,
//! `tFAW`, `tRFC`) and channel-scoped (`tCCD`, bus turnaround) timing
//! constraints, and refreshed from per-bank timing-wheel queues with a
//! JEDEC-style postpone/pull-in elasticity window (DSARP-style
//! refresh-access parallelization). The hot loop keeps bank state in
//! struct-of-arrays form and allocates nothing in steady state; whole
//! DIMMs can also run as one independent [`Scheduler::for_channel`]
//! shard per channel, bit-identical to the single-instance run (the
//! [`reference`] module keeps the original per-bank-heap engine as the
//! executable specification both are tested against).
//!
//! With one bank and parallelization disabled the scheduler is
//! bit-identical to [`vrl_dram_sim::controller::FrFcfsController`] — the
//! inter-bank constraints cannot bind, and the refresh loop reduces to
//! the controller's refresh-first arbitration (see
//! `tests/controller_equivalence.rs`).
//!
//! ```
//! use vrl_sched::{SchedConfig, Scheduler};
//! use vrl_dram_sim::policy::AutoRefresh;
//! use vrl_trace::record::{Op, TraceRecord};
//!
//! let config = SchedConfig::with_geometry(4, 64).unwrap();
//! let mut sched = Scheduler::new(config, AutoRefresh::new(64.0)).unwrap();
//! let trace = (0..128).map(|i| TraceRecord::new(i * 4, Op::Read, i as u32));
//! let stats = sched.run(trace, 1.0).unwrap();
//! assert_eq!(stats.sim.accesses, 128);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod reference;
pub mod sched;
pub mod stats;

pub use config::SchedConfig;
pub use reference::ReferenceScheduler;
pub use sched::{SchedCursor, Scheduler};
pub use stats::{LatencyHistogram, SchedStats};
