//! The multi-channel, multi-rank, multi-bank command scheduler.
//!
//! Per-channel FR-FCFS request queues feed per-bank state machines.
//! Each channel owns a command bus and a data bus; each rank scopes the
//! activate constraints (`tRRD`, `tFAW`) and the refresh-start spacing
//! (`tRFC`). Each bank keeps its per-row refresh deadlines on its own
//! timing wheel; with refresh-access parallelization enabled, due
//! refreshes yield to queued demand on their bank (within the
//! elasticity window) and idle banks pull upcoming refreshes in early,
//! so refresh work hides behind demand service on other banks instead
//! of blocking it.
//!
//! # Struct-of-arrays hot loop
//!
//! Bank state lives in parallel arrays (`open_row`, `busy_until`,
//! `next_due`, `queued`) rather than one heap object per bank: the
//! per-decision scans — earliest-ready bank, due-refresh election, the
//! advance-target minimum — walk contiguous integers instead of
//! chasing pointers, and the due-refresh scan reads a cached copy of
//! each wheel's head deadline instead of settling the wheel. The
//! four-activate window is a fixed ring (`ActWindow`), and the
//! steady-state loop performs no heap allocation at all
//! (`tests/zero_alloc.rs` holds it to that).
//!
//! # Channel sharding
//!
//! Channels share nothing, so a whole-DIMM run executes each channel's
//! scheduling loop independently, interleaved in bounded spans
//! ([`CHANNEL_SPAN`] cycles) only to keep trace admission in arrival
//! order. [`Scheduler::for_channel`] builds a single-channel shard of
//! the same DIMM; running one shard per channel (in parallel, via
//! `vrl-exec`) produces bit-identical per-channel decision sequences —
//! and, merged, bit-identical statistics — to the whole-DIMM run,
//! because each lane's inputs are the same either way.
//!
//! With one bank and parallelization off, the scheduler's decision
//! sequence is exactly [`FrFcfsController`]'s: refresh-first, then the
//! FR-FCFS pick, then an idle jump. The inter-bank constraints cannot
//! bind with a single bank (see
//! [`TimingParams::paper_default`](vrl_dram_sim::timing::TimingParams::paper_default)),
//! so the two engines produce bit-identical counters — the regression
//! test in `tests/controller_equivalence.rs` holds the scheduler to
//! that, and holds the SoA engine to the per-bank-heap
//! [`ReferenceScheduler`](crate::reference::ReferenceScheduler) across
//! full-DIMM geometries.
//!
//! [`FrFcfsController`]: vrl_dram_sim::controller::FrFcfsController

use std::collections::VecDeque;

use vrl_trace::{Op, TraceRecord};

use vrl_dram_sim::error::Error;
use vrl_dram_sim::policy::{ActivationEffect, RefreshPolicy};
use vrl_dram_sim::sim::{NullObserver, SimObserver};
use vrl_dram_sim::timing::RefreshLatency;
use vrl_dram_sim::wheel::RefreshQueue;

use crate::config::SchedConfig;
use crate::stats::SchedStats;

/// Cycles each channel runs ahead before the whole-DIMM loop rotates to
/// the next channel. Any value preserves bit-identity (channels share
/// nothing; spans only bound trace-admission lookahead); this one keeps
/// buffered arrivals small while amortizing the rotation.
pub const CHANNEL_SPAN: u64 = 1 << 20;

/// Sentinel for "no open row" in the `open_row` array (row indices are
/// always `< rows_per_bank`).
const NO_ROW: u32 = u32::MAX;

/// A queued request, steered to its **global** bank on admission.
#[derive(Debug, Clone, Copy)]
struct Pending {
    record: TraceRecord,
    bank: u32,
    row: u32,
}

impl vrl_snap::Snapshot for Pending {
    fn save(&self, enc: &mut vrl_snap::Encoder) {
        self.record.save(enc);
        enc.put_u32(self.bank);
        enc.put_u32(self.row);
    }

    fn load(dec: &mut vrl_snap::Decoder<'_>) -> Result<Self, vrl_snap::SnapError> {
        Ok(Pending {
            record: TraceRecord::load(dec)?,
            bank: dec.take_u32()?,
            row: dec.take_u32()?,
        })
    }
}

/// The last four activate issue cycles of one rank, as a fixed ring —
/// the `tFAW` window without a `VecDeque`'s heap storage.
#[derive(Debug, Default, Clone, Copy)]
struct ActWindow {
    buf: [u64; 4],
    len: u8,
    head: u8,
}

impl ActWindow {
    fn push(&mut self, at: u64) {
        if self.len < 4 {
            self.buf[(self.head + self.len) as usize % 4] = at;
            self.len += 1;
        } else {
            self.buf[self.head as usize] = at;
            self.head = (self.head + 1) % 4;
        }
    }

    /// The window's oldest activate, once four have been seen — the
    /// cycle `tFAW` is measured from.
    fn oldest_if_full(&self) -> Option<u64> {
        (self.len == 4).then(|| self.buf[self.head as usize])
    }

    /// Oldest-to-newest, for canonical serialization (reloading by
    /// re-pushing yields `head == 0`, so save → load → save is
    /// byte-stable).
    fn ordered(&self) -> Vec<u64> {
        (0..self.len)
            .map(|i| self.buf[(self.head + i) as usize % 4])
            .collect()
    }

    fn from_ordered(acts: &[u64]) -> Self {
        let mut w = ActWindow::default();
        for &at in acts {
            w.push(at);
        }
        w
    }
}

/// Per-rank arbitration state: `tRRD`, the `tFAW` window, and the
/// `tRFC` refresh-start spacing all scope to one rank.
#[derive(Debug, Default)]
struct RankWindow {
    last_act: Option<(u64, u32)>,
    acts: ActWindow,
    last_refresh: Option<u64>,
}

impl vrl_snap::Snapshot for RankWindow {
    fn save(&self, enc: &mut vrl_snap::Encoder) {
        self.last_act.save(enc);
        self.acts.ordered().save(enc);
        self.last_refresh.save(enc);
    }

    fn load(dec: &mut vrl_snap::Decoder<'_>) -> Result<Self, vrl_snap::SnapError> {
        Ok(RankWindow {
            last_act: <Option<(u64, u32)>>::load(dec)?,
            acts: ActWindow::from_ordered(&Vec::<u64>::load(dec)?),
            last_refresh: <Option<u64>>::load(dec)?,
        })
    }
}

/// One channel's shared-bus arbitration state.
///
/// The command bus issues one command per cycle; the data bus spaces
/// CAS bursts of *different* banks by `tCCD` (plus the turnaround
/// penalty on a read/write direction change); each rank limits
/// activates by `tRRD` (different banks) and the four-activate window
/// `tFAW`, and spaces refresh starts by `tRFC`. Same-bank spacing
/// needs no arbitration: the bank occupancy model already holds a bank
/// for the whole lumped operation.
#[derive(Debug)]
struct ChannelBus {
    last_cmd: Option<u64>,
    last_cas: Option<(u64, u32, bool)>,
    ranks: Vec<RankWindow>,
}

impl ChannelBus {
    fn new(ranks: usize) -> Self {
        ChannelBus {
            last_cmd: None,
            last_cas: None,
            ranks: (0..ranks).map(|_| RankWindow::default()).collect(),
        }
    }

    /// Earliest issue cycle at or after `start` honoring the activate
    /// constraints for `bank` (a global bank index) on `rank`.
    fn act_bound(
        &self,
        mut start: u64,
        rank: usize,
        bank: u32,
        timing: &vrl_dram_sim::TimingParams,
    ) -> u64 {
        let r = &self.ranks[rank];
        if let Some((at, b)) = r.last_act {
            if b != bank {
                start = start.max(at + timing.trrd);
            }
        }
        if let Some(oldest) = r.acts.oldest_if_full() {
            start = start.max(oldest + timing.tfaw);
        }
        start
    }

    /// Earliest issue cycle at or after `start` whose CAS (at
    /// `start + cas_offset`) honors the data-bus constraints.
    fn cas_bound(
        &self,
        start: u64,
        cas_offset: u64,
        bank: u32,
        is_write: bool,
        timing: &vrl_dram_sim::TimingParams,
    ) -> u64 {
        if let Some((at, b, was_write)) = self.last_cas {
            if b != bank {
                let gap = timing.tccd
                    + if was_write != is_write {
                        timing.bus_turnaround
                    } else {
                        0
                    };
                let bound = at + gap;
                if start + cas_offset < bound {
                    return bound - cas_offset;
                }
            }
        }
        start
    }

    /// Claims the command bus at or after `start` (one command per
    /// cycle), returning the issue cycle.
    fn claim_cmd(&mut self, start: u64) -> u64 {
        let at = match self.last_cmd {
            Some(c) if start <= c => c + 1,
            _ => start,
        };
        self.last_cmd = Some(at);
        at
    }

    fn note_act(&mut self, at: u64, rank: usize, bank: u32) {
        let r = &mut self.ranks[rank];
        r.last_act = Some((at, bank));
        r.acts.push(at);
    }

    fn note_cas(&mut self, at: u64, bank: u32, is_write: bool) {
        self.last_cas = Some((at, bank, is_write));
    }
}

impl vrl_snap::Snapshot for ChannelBus {
    fn save(&self, enc: &mut vrl_snap::Encoder) {
        self.last_cmd.save(enc);
        self.last_cas.save(enc);
        self.ranks.save(enc);
    }

    fn load(dec: &mut vrl_snap::Decoder<'_>) -> Result<Self, vrl_snap::SnapError> {
        Ok(ChannelBus {
            last_cmd: <Option<u64>>::load(dec)?,
            last_cas: <Option<(u64, u32, bool)>>::load(dec)?,
            ranks: Vec::<RankWindow>::load(dec)?,
        })
    }
}

/// One channel's resumable loop state: its request queue, its buffered
/// (pulled-but-not-admitted) arrivals, its clock, and its stall latch.
#[derive(Debug, Default)]
struct LaneCursor {
    queue: VecDeque<Pending>,
    buffer: VecDeque<Pending>,
    now: u64,
    last_stall: Option<u64>,
    /// The last advance target overshot the span boundary, so `now`
    /// was clamped to it: this clock value is a synthetic visit an
    /// unsharded run never makes. Nothing can fire here (the state is
    /// unchanged since the last genuine decision point), but the
    /// pull-in scan — whose lookahead horizon is anchored at `now` —
    /// must not run until the clock reaches a genuine event again, or
    /// it would pull refreshes in earlier than an independent run of
    /// this channel would.
    coasting: bool,
}

impl vrl_snap::Snapshot for LaneCursor {
    fn save(&self, enc: &mut vrl_snap::Encoder) {
        let queued: Vec<Pending> = self.queue.iter().copied().collect();
        queued.save(enc);
        let buffered: Vec<Pending> = self.buffer.iter().copied().collect();
        buffered.save(enc);
        enc.put_u64(self.now);
        self.last_stall.save(enc);
        enc.put_bool(self.coasting);
    }

    fn load(dec: &mut vrl_snap::Decoder<'_>) -> Result<Self, vrl_snap::SnapError> {
        Ok(LaneCursor {
            queue: Vec::<Pending>::load(dec)?.into(),
            buffer: Vec::<Pending>::load(dec)?.into(),
            now: dec.take_u64()?,
            last_stall: <Option<u64>>::load(dec)?,
            coasting: dec.take_bool()?,
        })
    }
}

/// The resumable position of a scheduler run: everything the scheduling
/// loop keeps outside the scheduler itself (mirrors
/// [`ControllerCursor`](vrl_dram_sim::controller::ControllerCursor)) —
/// one lane per active channel plus the count of records consumed from
/// the source trace.
#[derive(Debug, Default)]
pub struct SchedCursor {
    /// Per-channel loop state; sized lazily on first use.
    lanes: Vec<LaneCursor>,
    /// Records consumed from the source trace so far (admitted or
    /// buffered).
    pulled: u64,
}

impl SchedCursor {
    /// A cursor at the start of a run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records consumed from the source trace so far (what a resumed run
    /// must skip when regenerating the trace).
    pub fn pulled(&self) -> u64 {
        self.pulled
    }
}

impl vrl_snap::Snapshot for SchedCursor {
    fn save(&self, enc: &mut vrl_snap::Encoder) {
        self.lanes.save(enc);
        enc.put_u64(self.pulled);
    }

    fn load(dec: &mut vrl_snap::Decoder<'_>) -> Result<Self, vrl_snap::SnapError> {
        Ok(SchedCursor {
            lanes: Vec::<LaneCursor>::load(dec)?,
            pulled: dec.take_u64()?,
        })
    }
}

/// The cycle-accurate DIMM scheduler (see the module docs for the
/// struct-of-arrays layout and the channel-sharding contract).
///
/// # Example
///
/// ```
/// use vrl_dram_sim::policy::AutoRefresh;
/// use vrl_sched::{SchedConfig, Scheduler};
///
/// let config = SchedConfig::with_geometry(4, 64).expect("geometry");
/// let mut sched = Scheduler::new(config, AutoRefresh::new(64.0)).expect("config");
/// let stats = sched.run(std::iter::empty(), 64.0).expect("run");
/// // Every one of the 256 rows refreshed once per 64 ms.
/// assert_eq!(stats.sim.total_refreshes(), 256);
/// ```
#[derive(Debug)]
pub struct Scheduler<P: RefreshPolicy> {
    config: SchedConfig,
    policy: P,
    /// What [`RefreshPolicy::on_activate`] needs, cached: lazily
    /// deferrable policies skip the call in the hot loop entirely.
    effect: ActivationEffect,
    /// First channel this instance drives (0 for a whole-DIMM run).
    first_channel: u32,
    /// Number of channels this instance drives.
    active_channels: u32,
    /// Global index of the first bank this instance drives.
    bank_offset: usize,
    /// Open row per local bank (`NO_ROW` when closed).
    open_row: Vec<u32>,
    /// First free cycle per local bank.
    busy_until: Vec<u64>,
    /// Cached head deadline of each bank's wheel (`u64::MAX` = empty);
    /// recomputed after every wheel pop/push.
    next_due: Vec<u64>,
    /// Per-channel lower bound on `min(next_due)` over the channel's
    /// banks. Lets the per-iteration refresh election and pull-in scan
    /// bail in O(1) when no deadline is near: lowered whenever a bank's
    /// `next_due` drops, tightened to the exact minimum on each full
    /// election scan. Derived state — rebuilt on restore, never
    /// serialized.
    due_bound: Vec<u64>,
    /// Per-row refresh deadlines, per local bank.
    wheels: Vec<RefreshQueue>,
    /// Queued-request count per local bank — O(1) contention checks.
    /// Rebuilt from the cursor on restore, never serialized.
    queued: Vec<u32>,
    /// Rows activated since their last refresh, one bit per local
    /// `(bank, row)` — the deferred-`on_activate` set for
    /// [`ActivationEffect::IdempotentReset`] policies.
    touched: Vec<u64>,
    /// Per-channel bus arbitration state.
    buses: Vec<ChannelBus>,
    /// Per-bank stats vectors are full-DIMM sized and indexed by
    /// **global** bank, so shard stats merge elementwise.
    stats: SchedStats,
}

impl<P: RefreshPolicy> Scheduler<P> {
    /// Creates a whole-DIMM scheduler; each bank's initial deadlines
    /// are staggered across the row's period by the same hash the
    /// single-bank engines use, keyed by the global row index.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the queue depth is zero.
    pub fn new(config: SchedConfig, policy: P) -> Result<Self, Error> {
        Self::build(config, policy, 0, config.channels())
    }

    /// Creates a shard driving only `channel` of the configured DIMM.
    ///
    /// The shard steers with the full DIMM geometry and silently drops
    /// records owned by other channels, so every shard can consume the
    /// same unfiltered trace; running one shard per channel yields
    /// per-channel results bit-identical to [`Scheduler::new`]'s
    /// whole-DIMM run (merge shard stats with
    /// [`SchedStats::merge`](crate::stats::SchedStats::merge)).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the queue depth is zero or
    /// `channel` is out of range.
    pub fn for_channel(config: SchedConfig, policy: P, channel: u32) -> Result<Self, Error> {
        if channel >= config.channels() {
            return Err(Error::InvalidConfig {
                reason: format!(
                    "channel {channel} out of range: the DIMM has {} channels",
                    config.channels()
                ),
            });
        }
        Self::build(config, policy, channel, 1)
    }

    fn build(
        config: SchedConfig,
        policy: P,
        first_channel: u32,
        active_channels: u32,
    ) -> Result<Self, Error> {
        if config.queue_depth == 0 {
            return Err(Error::InvalidConfig {
                reason: "scheduler queue must hold at least one request".into(),
            });
        }
        let banks_per_channel = config.banks_per_channel() as usize;
        let bank_offset = first_channel as usize * banks_per_channel;
        let active_banks = active_channels as usize * banks_per_channel;
        let rows = config.rows_per_bank() as usize;

        let mut wheels = Vec::with_capacity(active_banks);
        let mut next_due = Vec::with_capacity(active_banks);
        for local in 0..active_banks {
            let bank = (bank_offset + local) as u32;
            let mut refreshes = RefreshQueue::new();
            for row in 0..config.rows_per_bank() {
                let global = config.global_row(bank, row);
                let period = config.timing.ms_to_cycles(policy.period_ms(global));
                let offset = if config.staggered {
                    (global as u64).wrapping_mul(2654435761) % period.max(1)
                } else {
                    0
                };
                refreshes.push(offset, row, offset);
            }
            next_due.push(refreshes.next_due().unwrap_or(u64::MAX));
            wheels.push(refreshes);
        }
        let due_bound = next_due
            .chunks(banks_per_channel)
            .map(|chunk| chunk.iter().copied().min().unwrap_or(u64::MAX))
            .collect();
        let effect = policy.activation_effect();
        let banks = config.banks() as usize;
        Ok(Scheduler {
            config,
            effect,
            policy,
            first_channel,
            active_channels,
            bank_offset,
            open_row: vec![NO_ROW; active_banks],
            busy_until: vec![0; active_banks],
            next_due,
            due_bound,
            wheels,
            queued: vec![0; active_banks],
            touched: vec![0; (active_banks * rows).div_ceil(64)],
            buses: (0..active_channels)
                .map(|_| ChannelBus::new(config.ranks() as usize))
                .collect(),
            stats: SchedStats {
                per_bank_refreshes: vec![0; banks],
                per_bank_accesses: vec![0; banks],
                ..SchedStats::default()
            },
        })
    }

    /// The configuration.
    pub fn config(&self) -> &SchedConfig {
        &self.config
    }

    /// The policy, for inspection.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Runs the trace for `duration_ms`.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] if an internal scheduling invariant breaks;
    /// these indicate a bug rather than a property of the workload.
    pub fn run<I: Iterator<Item = TraceRecord>>(
        &mut self,
        trace: I,
        duration_ms: f64,
    ) -> Result<SchedStats, Error> {
        self.run_observed(trace, duration_ms, &mut NullObserver)
    }

    /// Runs with an observer receiving refresh/activate events, keyed
    /// by global row index (`bank * rows_per_bank + row`).
    ///
    /// In a whole-DIMM run the observer sees channels interleaved in
    /// [`CHANNEL_SPAN`] blocks; per-channel event streams (and their
    /// deterministic merge) come from running one
    /// [`Scheduler::for_channel`] shard per channel instead.
    ///
    /// # Errors
    ///
    /// See [`Scheduler::run`].
    pub fn run_observed<I, O>(
        &mut self,
        trace: I,
        duration_ms: f64,
        observer: &mut O,
    ) -> Result<SchedStats, Error>
    where
        I: Iterator<Item = TraceRecord>,
        O: SimObserver,
    {
        let end = self.config.timing.ms_to_cycles(duration_ms);
        let mut trace = trace.take_while(|r| r.cycle < end).peekable();
        let mut cursor = SchedCursor::new();
        self.run_span_observed(&mut cursor, &mut trace, end, u64::MAX, observer)?;
        Ok(self.finish(end))
    }

    /// Runs the scheduling loop until every channel's clock reaches
    /// `stop_at` or all work before `end` is exhausted — the
    /// checkpointing building block. The pause point inserts no state
    /// change, so composing spans (with [`Scheduler::finish`] at the
    /// end) is bit-identical to [`Scheduler::run_observed`] by
    /// construction.
    ///
    /// Returns `true` if the run paused at `stop_at` with work
    /// remaining.
    ///
    /// # Errors
    ///
    /// See [`Scheduler::run`]; also rejects a cursor whose lane count
    /// does not match this scheduler's channel count.
    pub fn run_span_observed<I, O>(
        &mut self,
        cursor: &mut SchedCursor,
        trace: &mut std::iter::Peekable<I>,
        end: u64,
        stop_at: u64,
        observer: &mut O,
    ) -> Result<bool, Error>
    where
        I: Iterator<Item = TraceRecord>,
        O: SimObserver,
    {
        let active = self.active_channels as usize;
        if cursor.lanes.is_empty() {
            cursor.lanes = std::iter::repeat_with(LaneCursor::default)
                .take(active)
                .collect();
        } else if cursor.lanes.len() != active {
            return Err(Error::InvalidConfig {
                reason: format!(
                    "cursor has {} channel lanes, scheduler drives {active}",
                    cursor.lanes.len()
                ),
            });
        }
        if active == 1 {
            return self.run_channel_span(cursor, trace, 0, end, stop_at, u64::MAX, observer);
        }
        loop {
            let base = cursor.lanes.iter().map(|l| l.now).min().unwrap_or(0);
            let span_end = base.saturating_add(CHANNEL_SPAN).min(stop_at);
            if span_end <= base {
                return Ok(true);
            }
            // Records arriving within the span are admissible; the
            // pull-in gate additionally looks `τ_full` ahead.
            let fill_horizon = span_end.saturating_add(self.config.timing.tau_full);
            let mut any_pending = false;
            for c in 0..active {
                let paused =
                    self.run_channel_span(cursor, trace, c, end, span_end, fill_horizon, observer)?;
                if paused {
                    any_pending = true;
                } else {
                    // A drained lane (empty queue and buffer, no
                    // deadlines before `end`) makes no decision during
                    // the jump, so stepping its clock is free — and
                    // keeps `base` advancing every rotation.
                    let lane = &mut cursor.lanes[c];
                    lane.now = lane.now.max(span_end);
                }
            }
            let source_dry =
                trace.peek().is_none() && cursor.lanes.iter().all(|l| l.buffer.is_empty());
            if !any_pending && source_dry {
                return Ok(false);
            }
            if span_end >= stop_at {
                return Ok(true);
            }
        }
    }

    /// Pulls source records into per-channel buffers until lane `c`'s
    /// buffer is non-empty, the source head is at or past
    /// `fill_horizon`, or the source is dry. Records steered to
    /// channels outside this instance's range are dropped (shards
    /// consume unfiltered traces); every pulled record counts toward
    /// `cursor.pulled`.
    fn fill<I: Iterator<Item = TraceRecord>>(
        &self,
        cursor: &mut SchedCursor,
        trace: &mut std::iter::Peekable<I>,
        c: usize,
        fill_horizon: u64,
    ) {
        let banks_per_channel = self.config.banks_per_channel() as usize;
        while cursor.lanes[c].buffer.is_empty() {
            match trace.peek() {
                Some(&record) if record.cycle < fill_horizon => {
                    trace.next();
                    cursor.pulled += 1;
                    let (bank, row) = self.config.steer(record.row);
                    let channel = bank as usize / banks_per_channel;
                    let Some(lane) = channel
                        .checked_sub(self.first_channel as usize)
                        .filter(|&l| l < cursor.lanes.len())
                    else {
                        continue;
                    };
                    cursor.lanes[lane]
                        .buffer
                        .push_back(Pending { record, bank, row });
                }
                _ => break,
            }
        }
    }

    /// Runs channel `c`'s scheduling loop until its clock reaches
    /// `span_end` (returning `true`) or its work before `end` is
    /// exhausted (returning `false`).
    #[allow(clippy::too_many_arguments)]
    fn run_channel_span<I, O>(
        &mut self,
        cursor: &mut SchedCursor,
        trace: &mut std::iter::Peekable<I>,
        c: usize,
        end: u64,
        span_end: u64,
        fill_horizon: u64,
        observer: &mut O,
    ) -> Result<bool, Error>
    where
        I: Iterator<Item = TraceRecord>,
        O: SimObserver,
    {
        let banks_per_channel = self.config.banks_per_channel() as usize;
        let lo = c * banks_per_channel;
        let hi = lo + banks_per_channel;
        loop {
            // Jump to the earliest cycle any bank accepts a command
            // (min over `max(busy, now)` = `max(min busy, now)`).
            let now = cursor.lanes[c].now;
            let min_busy = self.busy_until[lo..hi].iter().copied().min().unwrap_or(now);
            let now = now.max(min_busy);
            cursor.lanes[c].now = now;
            if now >= span_end {
                return Ok(true);
            }

            // Admit arrivals that have happened by `now`.
            loop {
                if cursor.lanes[c].queue.len() >= self.config.queue_depth {
                    break;
                }
                self.fill(cursor, trace, c, fill_horizon);
                let lane = &mut cursor.lanes[c];
                match lane.buffer.front() {
                    Some(p) if p.record.cycle <= now => {
                        let pending = *p;
                        lane.buffer.pop_front();
                        lane.queue.push_back(pending);
                        lane.coasting = false;
                        self.queued[pending.bank as usize - self.bank_offset] += 1;
                    }
                    _ => break,
                }
            }
            self.fill(cursor, trace, c, fill_horizon);
            let lane = &mut cursor.lanes[c];
            self.stats.max_queue_depth = self.stats.max_queue_depth.max(lane.queue.len());
            // A full queue with an arrival already waiting is back
            // pressure; report each stalled cycle once.
            if lane.queue.len() == self.config.queue_depth
                && lane.buffer.front().is_some_and(|p| p.record.cycle <= now)
                && lane.last_stall != Some(now)
            {
                lane.last_stall = Some(now);
                self.stats.queue_stalls += 1;
                observer.on_queue_stall(now, lane.queue.len());
            }

            // Refreshes due by `now` on free banks (postponed onto
            // contended banks when parallelization allows).
            if self.try_refresh(c, now, end, observer)? {
                cursor.lanes[c].coasting = false;
                continue;
            }

            // FR-FCFS demand on free banks.
            if let Some(idx) = self.pick(&cursor.lanes[c].queue, now) {
                if idx != 0 {
                    self.stats.reordered += 1;
                }
                let lane = &mut cursor.lanes[c];
                let len = lane.queue.len();
                let pending = lane
                    .queue
                    .remove(idx)
                    .ok_or(Error::QueueIndexInvalid { index: idx, len })?;
                self.queued[pending.bank as usize - self.bank_offset] -= 1;
                cursor.lanes[c].coasting = false;
                self.service(c, pending, now, observer);
                continue;
            }

            // Idle banks pull upcoming refreshes in early — but never
            // from a coasting clock (see [`LaneCursor::coasting`]).
            let upcoming = cursor.lanes[c].buffer.front().map(|p| p.record.cycle);
            if !cursor.lanes[c].coasting && self.try_pull_in(c, now, end, upcoming, observer) {
                continue;
            }

            // Nothing issuable at `now`: advance to the next arrival (if
            // it can be admitted), refresh deadline, or bank release.
            let next_arrival =
                upcoming.filter(|_| cursor.lanes[c].queue.len() < self.config.queue_depth);
            // A due refresh on a still-busy bank becomes issuable only
            // when the bank frees, so its advance target is the later of
            // the two.
            let next_refresh = self.next_due[lo..hi]
                .iter()
                .zip(&self.busy_until[lo..hi])
                .filter(|&(&due, _)| due < end)
                .map(|(&due, &busy)| due.max(busy))
                .min();
            let next_release = self.busy_until[lo..hi]
                .iter()
                .zip(&self.queued[lo..hi])
                .filter(|&(&busy, &queued)| busy > now && queued > 0)
                .map(|(&busy, _)| busy)
                .min();
            match [next_arrival, next_refresh, next_release]
                .into_iter()
                .flatten()
                .min()
            {
                // A target past the span boundary is clamped to it: the
                // lane pauses there, and later rounds (with a longer
                // admission horizon) may discover an earlier arrival to
                // wake for instead. The clamped clock is synthetic —
                // mark the lane coasting until a genuine event.
                Some(t) if t > now => {
                    let lane = &mut cursor.lanes[c];
                    lane.coasting = t > span_end;
                    lane.now = t.min(span_end);
                }
                Some(_) => return Err(Error::SchedulerStalled { cycle: now }),
                None => return Ok(false),
            }
        }
    }

    /// Finalizes the statistics after the last span (the tail of
    /// [`Scheduler::run_observed`]), delivering any deferred policy
    /// activations first (ascending global-row order).
    pub fn finish(&mut self, end: u64) -> SchedStats {
        let rows = self.config.rows_per_bank() as usize;
        for word in 0..self.touched.len() {
            while self.touched[word] != 0 {
                let bit = word * 64 + self.touched[word].trailing_zeros() as usize;
                self.touched[word] &= self.touched[word] - 1;
                let bank = (self.bank_offset + bit / rows) as u32;
                self.policy
                    .on_activate(self.config.global_row(bank, (bit % rows) as u32));
            }
        }
        self.stats.sim.total_cycles = end.max(self.busy_until.iter().copied().max().unwrap_or(0));
        self.stats.clone()
    }

    /// Appends the scheduler's full run-state — the bank arrays, every
    /// refresh wheel, the deferred-activation set, per-channel bus
    /// state, statistics, policy counters, and the scheduling cursor —
    /// to `enc`, where `P` supports state capture.
    pub fn save_state(&self, enc: &mut vrl_snap::Encoder, cursor: &SchedCursor)
    where
        P: vrl_dram_sim::policy::PolicyState,
    {
        use vrl_snap::Snapshot as _;
        self.open_row.save(enc);
        self.busy_until.save(enc);
        self.wheels.save(enc);
        self.touched.save(enc);
        self.buses.save(enc);
        self.stats.save(enc);
        self.policy.save_state(enc);
        cursor.save(enc);
    }

    /// Restores run-state captured by [`Scheduler::save_state`] into a
    /// freshly-constructed scheduler of the same configuration,
    /// returning the scheduling cursor to resume from. The cached
    /// wheel heads and per-bank queued counts are derived state,
    /// rebuilt here rather than loaded.
    ///
    /// # Errors
    ///
    /// Returns [`vrl_snap::SnapError`] on truncated input or a snapshot
    /// from a differently-shaped scheduler (bank, channel, or rank
    /// count).
    pub fn restore_state(
        &mut self,
        dec: &mut vrl_snap::Decoder<'_>,
    ) -> Result<SchedCursor, vrl_snap::SnapError>
    where
        P: vrl_dram_sim::policy::PolicyState,
    {
        use vrl_snap::Snapshot as _;
        let open_row = Vec::<u32>::load(dec)?;
        if open_row.len() != self.open_row.len() {
            return Err(vrl_snap::SnapError::Malformed {
                what: format!(
                    "scheduler has {} banks, snapshot has {}",
                    self.open_row.len(),
                    open_row.len()
                ),
            });
        }
        let busy_until = Vec::<u64>::load(dec)?;
        let wheels = Vec::<RefreshQueue>::load(dec)?;
        let touched = Vec::<u64>::load(dec)?;
        let buses = Vec::<ChannelBus>::load(dec)?;
        if busy_until.len() != self.busy_until.len()
            || wheels.len() != self.wheels.len()
            || touched.len() != self.touched.len()
            || buses.len() != self.buses.len()
            || buses
                .iter()
                .any(|b| b.ranks.len() != self.config.ranks() as usize)
        {
            return Err(vrl_snap::SnapError::Malformed {
                what: "snapshot from a differently-shaped scheduler".into(),
            });
        }
        self.open_row = open_row;
        self.busy_until = busy_until;
        self.wheels = wheels;
        self.touched = touched;
        self.buses = buses;
        self.stats = SchedStats::load(dec)?;
        self.policy.restore_state(dec)?;
        let cursor = SchedCursor::load(dec)?;
        if cursor.lanes.len() != self.active_channels as usize {
            return Err(vrl_snap::SnapError::Malformed {
                what: format!(
                    "cursor has {} channel lanes, scheduler drives {}",
                    cursor.lanes.len(),
                    self.active_channels
                ),
            });
        }
        for (b, wheel) in self.wheels.iter_mut().enumerate() {
            self.next_due[b] = wheel.next_due().unwrap_or(u64::MAX);
        }
        let banks_per_channel = self.config.banks_per_channel() as usize;
        for (c, chunk) in self.next_due.chunks(banks_per_channel).enumerate() {
            self.due_bound[c] = chunk.iter().copied().min().unwrap_or(u64::MAX);
        }
        self.queued.iter_mut().for_each(|q| *q = 0);
        for lane in &cursor.lanes {
            for p in &lane.queue {
                self.queued[p.bank as usize - self.bank_offset] += 1;
            }
        }
        Ok(cursor)
    }

    /// Issues at most one due refresh (due ≤ `now`, due < `end`) on a
    /// bank of channel `c` that is free at `now`. With parallelization
    /// on, a due refresh whose bank has queued demand is postponed
    /// while the elasticity window allows, and executes regardless once
    /// the window is exhausted (bounding staleness).
    fn try_refresh<O: SimObserver>(
        &mut self,
        c: usize,
        now: u64,
        end: u64,
        observer: &mut O,
    ) -> Result<bool, Error> {
        let banks_per_channel = self.config.banks_per_channel() as usize;
        let lo = c * banks_per_channel;
        let hi = lo + banks_per_channel;
        let horizon = now.saturating_add(1).min(end);
        // `due_bound[c] ≤ min(next_due)` over the channel, so a bound
        // at or past the horizon proves the election below would come
        // up empty — the common case, decided in O(1).
        if self.due_bound[c] >= horizon {
            return Ok(false);
        }
        loop {
            let mut best: Option<(u64, usize)> = None;
            let mut min_due = u64::MAX;
            for b in lo..hi {
                let due = self.next_due[b];
                min_due = min_due.min(due);
                if self.busy_until[b] > now {
                    continue;
                }
                if due < horizon && best.is_none_or(|(d, _)| due < d) {
                    best = Some((due, b));
                }
            }
            self.due_bound[c] = min_due;
            let Some((_, bank)) = best else {
                return Ok(false);
            };
            let (due, row, original_due) = self.wheels[bank]
                .pop_due_before(horizon)
                .ok_or(Error::SchedulerStalled { cycle: now })?;
            let contended = self.queued[bank] > 0;
            if self.config.parallel_refresh && contended {
                let deadline = original_due.saturating_add(self.config.slack);
                if now < deadline {
                    // Retry in coarse steps (an eighth of the window) so
                    // a long-contended refresh re-arbitrates a bounded
                    // number of times, but never past the window's edge
                    // (the pop after that executes unconditionally).
                    let step = (self.config.slack / 8)
                        .max(self.config.timing.tau_full)
                        .max(1);
                    let retry = (now + step).min(deadline).max(now + 1);
                    self.wheels[bank].push(retry, row, original_due);
                    self.next_due[bank] = self.wheels[bank].next_due().unwrap_or(u64::MAX);
                    self.due_bound[c] = self.due_bound[c].min(self.next_due[bank]);
                    self.stats.sim.postponed_refreshes += 1;
                    let global = (self.bank_offset + bank) as u32;
                    observer.on_refresh_postponed(self.config.global_row(global, row), now);
                    continue;
                }
            }
            self.next_due[bank] = self.wheels[bank].next_due().unwrap_or(u64::MAX);
            self.execute_refresh(
                c,
                bank,
                now.max(due),
                row,
                original_due,
                contended,
                observer,
            );
            return Ok(true);
        }
    }

    /// With parallelization on, executes the next upcoming refresh of a
    /// free, demand-less bank of channel `c` up to `slack` cycles
    /// early. Early refreshes are always retention-safe; the next
    /// deadline still advances from the original one, so the schedule
    /// never drifts.
    ///
    /// Only fires when the next un-admitted arrival (if any) is at least
    /// a full refresh away: pulling in during a traffic burst's tail
    /// occupies the bank just as new demand lands, and the queueing
    /// backlog amplifies those few cycles into far more stall than the
    /// deferred refresh would ever have cost.
    fn try_pull_in<O: SimObserver>(
        &mut self,
        c: usize,
        now: u64,
        end: u64,
        next_arrival: Option<u64>,
        observer: &mut O,
    ) -> bool {
        if !self.config.parallel_refresh || self.config.slack == 0 {
            return false;
        }
        if next_arrival.is_some_and(|a| a < now + self.config.timing.tau_full) {
            return false;
        }
        let banks_per_channel = self.config.banks_per_channel() as usize;
        let lo = c * banks_per_channel;
        let hi = lo + banks_per_channel;
        let horizon = now
            .saturating_add(self.config.slack)
            .saturating_add(1)
            .min(end);
        // Same O(1) bail as the refresh election: nothing due within
        // the pull-in window anywhere on the channel.
        if self.due_bound[c] >= horizon {
            return false;
        }
        for bank in lo..hi {
            if self.busy_until[bank] > now || self.queued[bank] > 0 {
                continue;
            }
            // The cached head deadline decides without settling the
            // wheel: the pop below succeeds exactly when it is within
            // the horizon.
            if self.next_due[bank] >= horizon {
                continue;
            }
            if let Some((_, row, original_due)) = self.wheels[bank].pop_due_before(horizon) {
                self.next_due[bank] = self.wheels[bank].next_due().unwrap_or(u64::MAX);
                self.stats.pulled_in_refreshes += 1;
                let global = (self.bank_offset + bank) as u32;
                observer.on_refresh_pull_in(self.config.global_row(global, row), now);
                self.execute_refresh(c, bank, now, row, original_due, false, observer);
                return true;
            }
        }
        false
    }

    /// FR-FCFS over requests whose bank is free at `now`: the oldest
    /// hitting its bank's open row, else the oldest.
    fn pick(&self, queue: &VecDeque<Pending>, now: u64) -> Option<usize> {
        let local = |p: &Pending| p.bank as usize - self.bank_offset;
        let free = |p: &Pending| self.busy_until[local(p)] <= now;
        if let Some(idx) = queue
            .iter()
            .position(|p| free(p) && self.open_row[local(p)] == p.row)
        {
            return Some(idx);
        }
        queue.iter().position(free)
    }

    fn mark_touched(&mut self, local_bank: usize, row: u32) {
        let bit = local_bank * self.config.rows_per_bank() as usize + row as usize;
        self.touched[bit / 64] |= 1 << (bit % 64);
    }

    fn clear_touched(&mut self, local_bank: usize, row: u32) -> bool {
        let bit = local_bank * self.config.rows_per_bank() as usize + row as usize;
        let mask = 1u64 << (bit % 64);
        let was = self.touched[bit / 64] & mask != 0;
        self.touched[bit / 64] &= !mask;
        was
    }

    /// Executes one refresh on local `bank` (of channel `c`) issuing at
    /// (or just after) `issue_at`.
    #[allow(clippy::too_many_arguments)]
    fn execute_refresh<O: SimObserver>(
        &mut self,
        c: usize,
        bank: usize,
        issue_at: u64,
        row: u32,
        original_due: u64,
        contended: bool,
        observer: &mut O,
    ) {
        let timing = self.config.timing;
        let global_bank = (self.bank_offset + bank) as u32;
        let rank = self.config.rank_of_bank(global_bank) as usize;
        let mut start = issue_at.max(self.busy_until[bank]);
        // tRFC: refresh starts within one rank keep their distance. At
        // the paper's trfc = 0 this is a no-op (the command bus already
        // spaces same-cycle commands), preserving single-rank results.
        if let Some(last) = self.buses[c].ranks[rank].last_refresh {
            start = start.max(last + timing.trfc);
        }
        start = self.buses[c].claim_cmd(start);
        self.buses[c].ranks[rank].last_refresh = Some(start);
        let mut duration = 0;
        if self.open_row[bank] != NO_ROW {
            self.open_row[bank] = NO_ROW;
            duration += timing.trp;
        }
        let global = self.config.global_row(global_bank, row);
        // Deliver this row's deferred activation (if any) before the
        // policy reads its per-row counters.
        if self.effect == ActivationEffect::IdempotentReset && self.clear_touched(bank, row) {
            self.policy.on_activate(global);
        }
        let kind = self.policy.refresh_kind(global);
        let refresh_cycles = timing.refresh_cycles(kind);
        duration += refresh_cycles;
        debug_assert!(start >= self.busy_until[bank]);
        let done = start + duration;
        self.busy_until[bank] = done;
        self.stats.sim.refresh_busy_cycles += refresh_cycles;
        if contended {
            self.stats.refresh_blocked_cycles += refresh_cycles;
        }
        match kind {
            RefreshLatency::Full => self.stats.sim.full_refreshes += 1,
            RefreshLatency::Partial => self.stats.sim.partial_refreshes += 1,
        }
        self.stats.per_bank_refreshes[global_bank as usize] += 1;
        observer.on_refresh(global, kind, done);
        let period = timing.ms_to_cycles(self.policy.period_ms(global)).max(1);
        let next = original_due + period;
        self.wheels[bank].push(next, row, next);
        self.next_due[bank] = self.next_due[bank].min(next);
        self.due_bound[c] = self.due_bound[c].min(self.next_due[bank]);
    }

    /// Services one queued request on its (free) bank, honoring the
    /// inter-bank activate and data-bus constraints.
    fn service<O: SimObserver>(&mut self, c: usize, pending: Pending, now: u64, observer: &mut O) {
        let timing = self.config.timing;
        let bank = pending.bank as usize - self.bank_offset;
        let rank = self.config.rank_of_bank(pending.bank) as usize;
        let hit = self.open_row[bank] == pending.row;
        let latency = if hit {
            timing.hit_latency()
        } else if self.open_row[bank] != NO_ROW {
            timing.miss_latency()
        } else {
            timing.trcd + timing.tcl
        };
        let cas_offset = latency - timing.tcl;
        let is_write = pending.record.op == Op::Write;

        let mut start = now.max(self.busy_until[bank]);
        if !hit {
            start = self.buses[c].act_bound(start, rank, pending.bank, &timing);
        }
        start = self.buses[c].cas_bound(start, cas_offset, pending.bank, is_write, &timing);
        start = self.buses[c].claim_cmd(start);

        self.stats.sim.stall_cycles += start - pending.record.cycle;
        self.stats.sim.accesses += 1;
        self.stats.per_bank_accesses[pending.bank as usize] += 1;
        if hit {
            self.stats.sim.row_hits += 1;
        } else {
            self.stats.sim.row_misses += 1;
        }
        debug_assert!(start >= self.busy_until[bank]);
        let done = start + latency;
        self.busy_until[bank] = done;
        if !hit {
            self.open_row[bank] = pending.row;
            let global = self.config.global_row(pending.bank, pending.row);
            match self.effect {
                ActivationEffect::Immediate => self.policy.on_activate(global),
                ActivationEffect::IdempotentReset => self.mark_touched(bank, pending.row),
                ActivationEffect::Ignored => {}
            }
            observer.on_activate(global, start);
            self.buses[c].note_act(start, rank, pending.bank);
        }
        self.buses[c].note_cas(start + cas_offset, pending.bank, is_write);
        if pending.record.op == Op::Read {
            self.stats.read_latency.record(done - pending.record.cycle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrl_dram_sim::policy::AutoRefresh;

    fn sparse_trace(n: u64, stride: u64, rows: u32) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| TraceRecord::new(i * stride, Op::Read, (i % rows as u64) as u32))
            .collect()
    }

    #[test]
    fn zero_queue_depth_is_rejected() {
        let config = SchedConfig::with_geometry(2, 16)
            .expect("geometry")
            .with_queue_depth(0);
        let err = Scheduler::new(config, AutoRefresh::new(64.0)).expect_err("zero depth");
        assert!(matches!(err, Error::InvalidConfig { .. }));
    }

    #[test]
    fn out_of_range_channel_is_rejected() {
        let config = SchedConfig::with_dimm_geometry(2, 1, 4, 16).expect("geometry");
        let err = Scheduler::for_channel(config, AutoRefresh::new(64.0), 2).expect_err("channel");
        assert!(matches!(err, Error::InvalidConfig { .. }));
    }

    #[test]
    fn refresh_only_run_covers_every_row() {
        let config = SchedConfig::with_geometry(4, 32).expect("geometry");
        let mut sched = Scheduler::new(config, AutoRefresh::new(64.0)).expect("config");
        let stats = sched.run(std::iter::empty(), 64.0).expect("run");
        assert_eq!(stats.sim.total_refreshes(), 4 * 32);
        assert_eq!(stats.sim.refresh_busy_cycles, 4 * 32 * 19);
        assert!(stats.per_bank_refreshes.iter().all(|&n| n == 32));
    }

    #[test]
    fn accesses_spread_across_banks() {
        let config = SchedConfig::with_geometry(4, 64).expect("geometry");
        let mut sched = Scheduler::new(config, AutoRefresh::new(64.0)).expect("config");
        // Consecutive row indices stripe across the 4 banks.
        let stats = sched
            .run(sparse_trace(4000, 50, 4 * 64).into_iter(), 1.0)
            .expect("run");
        assert_eq!(stats.sim.accesses, 4000);
        for (b, &n) in stats.per_bank_accesses.iter().enumerate() {
            assert_eq!(n, 1000, "bank {b}: {n}");
        }
        assert_eq!(stats.read_latency.count(), 4000);
    }

    #[test]
    fn multi_bank_overlap_beats_a_single_bank() {
        // The same demand stream over 4 banks vs 1 bank (same total
        // rows): bank-level parallelism must cut aggregate stall time.
        let trace = |rows: u32| sparse_trace(20_000, 8, rows);
        let quad = SchedConfig::with_geometry(4, 64).expect("geometry");
        let mono = SchedConfig::with_geometry(1, 256).expect("geometry");
        let mut sched4 = Scheduler::new(quad, AutoRefresh::new(64.0)).expect("config");
        let mut sched1 = Scheduler::new(mono, AutoRefresh::new(64.0)).expect("config");
        let s4 = sched4.run(trace(256).into_iter(), 1.0).expect("run");
        let s1 = sched1.run(trace(256).into_iter(), 1.0).expect("run");
        assert_eq!(s4.sim.accesses, s1.sim.accesses);
        assert!(
            s4.sim.stall_cycles < s1.sim.stall_cycles / 2,
            "4 banks must overlap service: {} vs {}",
            s4.sim.stall_cycles,
            s1.sim.stall_cycles
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let config = SchedConfig::with_geometry(8, 32).expect("geometry");
        let run = || {
            let mut sched = Scheduler::new(config, AutoRefresh::new(64.0)).expect("config");
            sched
                .run(sparse_trace(10_000, 17, 256).into_iter(), 64.0)
                .expect("run")
        };
        assert_eq!(run(), run());
    }

    /// Bursts of back-to-back demand with idle gaps in between: the
    /// pattern refresh-access parallelization exists for. Refreshes due
    /// inside a burst defer to the gap (the window is much wider than a
    /// burst), so demand stops seeing them.
    fn bursty_trace(bursts: u64, burst_len: u64, gap: u64, rows: u32) -> Vec<TraceRecord> {
        let mut trace = Vec::with_capacity((bursts * burst_len) as usize);
        for b in 0..bursts {
            for i in 0..burst_len {
                let idx = (b * burst_len + i) % rows as u64;
                trace.push(TraceRecord::new(b * gap + i, Op::Read, idx as u32));
            }
        }
        trace
    }

    #[test]
    fn parallelization_postpones_contended_refreshes() {
        let config = SchedConfig::with_geometry(4, 1024).expect("geometry");
        let trace = bursty_trace(1280, 400, 50_000, 4096);
        let mut plain =
            Scheduler::new(config.with_parallelism(false), AutoRefresh::new(64.0)).expect("config");
        let mut dsarp =
            Scheduler::new(config.with_parallelism(true), AutoRefresh::new(64.0)).expect("config");
        let p = plain.run(trace.clone().into_iter(), 64.0).expect("run");
        let d = dsarp.run(trace.into_iter(), 64.0).expect("run");
        assert!(
            p.refresh_blocked_cycles > 0,
            "bursts must collide with refreshes at all"
        );
        assert!(d.sim.postponed_refreshes > 0);
        assert!(
            d.refresh_blocked_cycles < p.refresh_blocked_cycles / 4,
            "parallelization must hide refreshes from demand: {} vs {}",
            d.refresh_blocked_cycles,
            p.refresh_blocked_cycles
        );
        assert!(
            d.sim.stall_cycles <= p.sim.stall_cycles,
            "deferring refreshes must not slow demand: {} vs {}",
            d.sim.stall_cycles,
            p.sim.stall_cycles
        );
    }

    #[test]
    fn scheduler_snapshot_resume_is_bit_identical() {
        use vrl_dram_sim::policy::VrlAccess;
        use vrl_retention::binning::BinningTable;
        use vrl_retention::profile::BankProfile;

        let config = SchedConfig::with_geometry(4, 64)
            .expect("geometry")
            .with_parallelism(true);
        let rows = (4 * 64) as usize;
        let bins = BinningTable::from_profile(&BankProfile::from_rows(
            std::iter::repeat_n(300.0, rows),
            32,
        ));
        let mk =
            || Scheduler::new(config, VrlAccess::new(bins.clone(), vec![3; rows])).expect("config");
        let trace = bursty_trace(40, 100, 50_000, 256);
        let end = config.timing.ms_to_cycles(64.0);

        let mut whole = mk();
        let expected = whole.run(trace.clone().into_iter(), 64.0).expect("run");

        // Run to an arbitrary mid-run cycle, snapshot, and "crash".
        let mut first = mk();
        let mut cursor = SchedCursor::new();
        let mut records = trace
            .clone()
            .into_iter()
            .take_while(|r| r.cycle < end)
            .peekable();
        let paused = first
            .run_span_observed(&mut cursor, &mut records, end, end / 2, &mut NullObserver)
            .expect("span");
        assert!(paused, "pausing mid-run must leave work");
        let mut enc = vrl_snap::Encoder::new();
        first.save_state(&mut enc, &cursor);
        let bytes = enc.into_bytes();
        drop(first);

        // Resume into a fresh scheduler, skipping the pulled records.
        let mut resumed = mk();
        let mut dec = vrl_snap::Decoder::new(&bytes);
        let mut cursor = resumed.restore_state(&mut dec).expect("restore");
        dec.finish().expect("no trailing bytes");
        let mut rest = trace
            .into_iter()
            .skip(cursor.pulled() as usize)
            .take_while(|r| r.cycle < end)
            .peekable();
        resumed
            .run_span_observed(&mut cursor, &mut rest, end, u64::MAX, &mut NullObserver)
            .expect("resume");
        assert_eq!(resumed.finish(end), expected);
    }

    #[test]
    fn dimm_snapshot_resume_is_bit_identical() {
        let config = SchedConfig::with_dimm_geometry(2, 2, 4, 64)
            .expect("geometry")
            .with_parallelism(true);
        let mk = || Scheduler::new(config, AutoRefresh::new(64.0)).expect("config");
        let trace = bursty_trace(40, 200, 50_000, 1024);
        let end = config.timing.ms_to_cycles(64.0);

        let mut whole = mk();
        let expected = whole.run(trace.clone().into_iter(), 64.0).expect("run");

        let mut first = mk();
        let mut cursor = SchedCursor::new();
        let mut records = trace
            .clone()
            .into_iter()
            .take_while(|r| r.cycle < end)
            .peekable();
        let paused = first
            .run_span_observed(&mut cursor, &mut records, end, end / 3, &mut NullObserver)
            .expect("span");
        assert!(paused, "pausing mid-run must leave work");
        let mut enc = vrl_snap::Encoder::new();
        first.save_state(&mut enc, &cursor);
        let bytes = enc.into_bytes();
        drop(first);

        let mut resumed = mk();
        let mut dec = vrl_snap::Decoder::new(&bytes);
        let mut cursor = resumed.restore_state(&mut dec).expect("restore");
        dec.finish().expect("no trailing bytes");
        let mut rest = trace
            .into_iter()
            .skip(cursor.pulled() as usize)
            .take_while(|r| r.cycle < end)
            .peekable();
        resumed
            .run_span_observed(&mut cursor, &mut rest, end, u64::MAX, &mut NullObserver)
            .expect("resume");
        assert_eq!(resumed.finish(end), expected);
    }

    #[test]
    fn sharded_channels_match_the_whole_dimm() {
        let config = SchedConfig::with_dimm_geometry(2, 2, 4, 32)
            .expect("geometry")
            .with_parallelism(true);
        let trace = bursty_trace(30, 150, 40_000, 512);

        let mut whole = Scheduler::new(config, AutoRefresh::new(64.0)).expect("config");
        let expected = whole.run(trace.clone().into_iter(), 64.0).expect("run");

        let mut merged: Option<SchedStats> = None;
        for channel in 0..config.channels() {
            let mut shard =
                Scheduler::for_channel(config, AutoRefresh::new(64.0), channel).expect("shard");
            let stats = shard.run(trace.clone().into_iter(), 64.0).expect("run");
            merged = Some(match merged {
                None => stats,
                Some(acc) => acc.merge(&stats),
            });
        }
        assert_eq!(merged.expect("channels"), expected);
    }

    #[test]
    fn command_bus_issues_at_most_one_command_per_cycle() {
        struct Cmds {
            starts: Vec<u64>,
        }
        impl SimObserver for Cmds {
            fn on_refresh(&mut self, _row: u32, _k: RefreshLatency, _c: u64) {}
            fn on_activate(&mut self, _row: u32, cycle: u64) {
                self.starts.push(cycle);
            }
        }
        let config = SchedConfig::with_geometry(8, 32).expect("geometry");
        let mut sched = Scheduler::new(config, AutoRefresh::new(64.0)).expect("config");
        let mut obs = Cmds { starts: Vec::new() };
        // A burst of simultaneous arrivals across all banks.
        let trace: Vec<TraceRecord> = (0..64u64)
            .map(|i| TraceRecord::new(0, Op::Read, i as u32))
            .collect();
        sched
            .run_observed(trace.into_iter(), 1.0, &mut obs)
            .expect("run");
        let mut starts = obs.starts.clone();
        starts.sort_unstable();
        starts.dedup();
        assert_eq!(starts.len(), obs.starts.len(), "activate cycles collide");
    }
}
