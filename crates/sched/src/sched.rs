//! The multi-bank command scheduler.
//!
//! One global FR-FCFS request queue feeds per-bank state machines that
//! share a command bus and a data bus. Each bank keeps its per-row
//! refresh deadlines on its own timing wheel; with refresh-access
//! parallelization enabled, due refreshes yield to queued demand on
//! their bank (within the elasticity window) and idle banks pull
//! upcoming refreshes in early, so refresh work hides behind demand
//! service on other banks instead of blocking it.
//!
//! With one bank and parallelization off, the scheduler's decision
//! sequence is exactly [`FrFcfsController`]'s: refresh-first, then the
//! FR-FCFS pick, then an idle jump. The inter-bank constraints cannot
//! bind with a single bank (see
//! [`TimingParams::paper_default`](vrl_dram_sim::timing::TimingParams::paper_default)),
//! so the two engines produce bit-identical counters — the regression
//! test in `tests/controller_equivalence.rs` holds the scheduler to
//! that.
//!
//! [`FrFcfsController`]: vrl_dram_sim::controller::FrFcfsController

use std::collections::VecDeque;

use vrl_trace::{Op, TraceRecord};

use vrl_dram_sim::bank::BankState;
use vrl_dram_sim::error::Error;
use vrl_dram_sim::policy::RefreshPolicy;
use vrl_dram_sim::sim::{NullObserver, SimObserver};
use vrl_dram_sim::timing::RefreshLatency;
use vrl_dram_sim::wheel::RefreshQueue;

use crate::config::SchedConfig;
use crate::stats::SchedStats;

/// One bank's scheduling state: the bank machine plus its refresh
/// wheel (deadlines keyed by bank-local row index).
#[derive(Debug)]
struct BankLane {
    state: BankState,
    refreshes: RefreshQueue,
}

impl vrl_snap::Snapshot for BankLane {
    fn save(&self, enc: &mut vrl_snap::Encoder) {
        self.state.save(enc);
        self.refreshes.save(enc);
    }

    fn load(dec: &mut vrl_snap::Decoder<'_>) -> Result<Self, vrl_snap::SnapError> {
        Ok(BankLane {
            state: BankState::load(dec)?,
            refreshes: RefreshQueue::load(dec)?,
        })
    }
}

/// A queued request, steered to its bank on admission.
#[derive(Debug, Clone, Copy)]
struct Pending {
    record: TraceRecord,
    bank: u32,
    row: u32,
}

impl vrl_snap::Snapshot for Pending {
    fn save(&self, enc: &mut vrl_snap::Encoder) {
        self.record.save(enc);
        enc.put_u32(self.bank);
        enc.put_u32(self.row);
    }

    fn load(dec: &mut vrl_snap::Decoder<'_>) -> Result<Self, vrl_snap::SnapError> {
        Ok(Pending {
            record: TraceRecord::load(dec)?,
            bank: dec.take_u32()?,
            row: dec.take_u32()?,
        })
    }
}

/// Shared-bus arbitration state.
///
/// The command bus issues one command per cycle; the data bus spaces
/// CAS bursts of *different* banks by `tCCD` (plus the turnaround
/// penalty on a read/write direction change) and the rank limits
/// activates by `tRRD` (different banks) and the four-activate window
/// `tFAW`. Same-bank spacing needs no arbitration: the bank occupancy
/// model already holds a bank for the whole lumped operation.
#[derive(Debug, Default)]
struct BusState {
    last_cmd: Option<u64>,
    last_act: Option<(u64, u32)>,
    /// Issue cycles of the last four activates, rank-wide.
    recent_acts: VecDeque<u64>,
    last_cas: Option<(u64, u32, bool)>,
}

impl BusState {
    /// Earliest issue cycle at or after `start` honoring the activate
    /// constraints for `bank`.
    fn act_bound(&self, mut start: u64, bank: u32, timing: &vrl_dram_sim::TimingParams) -> u64 {
        if let Some((at, b)) = self.last_act {
            if b != bank {
                start = start.max(at + timing.trrd);
            }
        }
        if self.recent_acts.len() == 4 {
            start = start.max(self.recent_acts[0] + timing.tfaw);
        }
        start
    }

    /// Earliest issue cycle at or after `start` whose CAS (at
    /// `start + cas_offset`) honors the data-bus constraints.
    fn cas_bound(
        &self,
        start: u64,
        cas_offset: u64,
        bank: u32,
        is_write: bool,
        timing: &vrl_dram_sim::TimingParams,
    ) -> u64 {
        if let Some((at, b, was_write)) = self.last_cas {
            if b != bank {
                let gap = timing.tccd
                    + if was_write != is_write {
                        timing.bus_turnaround
                    } else {
                        0
                    };
                let bound = at + gap;
                if start + cas_offset < bound {
                    return bound - cas_offset;
                }
            }
        }
        start
    }

    /// Claims the command bus at or after `start` (one command per
    /// cycle), returning the issue cycle.
    fn claim_cmd(&mut self, start: u64) -> u64 {
        let at = match self.last_cmd {
            Some(c) if start <= c => c + 1,
            _ => start,
        };
        self.last_cmd = Some(at);
        at
    }

    fn note_act(&mut self, at: u64, bank: u32) {
        self.last_act = Some((at, bank));
        self.recent_acts.push_back(at);
        if self.recent_acts.len() > 4 {
            self.recent_acts.pop_front();
        }
    }

    fn note_cas(&mut self, at: u64, bank: u32, is_write: bool) {
        self.last_cas = Some((at, bank, is_write));
    }
}

impl vrl_snap::Snapshot for BusState {
    fn save(&self, enc: &mut vrl_snap::Encoder) {
        self.last_cmd.save(enc);
        self.last_act.save(enc);
        let acts: Vec<u64> = self.recent_acts.iter().copied().collect();
        acts.save(enc);
        self.last_cas.save(enc);
    }

    fn load(dec: &mut vrl_snap::Decoder<'_>) -> Result<Self, vrl_snap::SnapError> {
        Ok(BusState {
            last_cmd: <Option<u64>>::load(dec)?,
            last_act: <Option<(u64, u32)>>::load(dec)?,
            recent_acts: Vec::<u64>::load(dec)?.into(),
            last_cas: <Option<(u64, u32, bool)>>::load(dec)?,
        })
    }
}

/// The resumable position of a scheduler run: everything the scheduling
/// loop keeps outside the scheduler itself (mirrors
/// [`ControllerCursor`](vrl_dram_sim::controller::ControllerCursor)).
#[derive(Debug, Default)]
pub struct SchedCursor {
    /// Requests admitted but not yet serviced.
    queue: VecDeque<Pending>,
    /// The scheduling clock.
    now: u64,
    /// Last cycle reported as a queue stall (each counted once).
    last_stall: Option<u64>,
    /// Records consumed from the source trace so far.
    pulled: u64,
}

impl SchedCursor {
    /// A cursor at the start of a run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records consumed from the source trace so far (what a resumed run
    /// must skip when regenerating the trace).
    pub fn pulled(&self) -> u64 {
        self.pulled
    }
}

impl vrl_snap::Snapshot for SchedCursor {
    fn save(&self, enc: &mut vrl_snap::Encoder) {
        let queued: Vec<Pending> = self.queue.iter().copied().collect();
        queued.save(enc);
        enc.put_u64(self.now);
        self.last_stall.save(enc);
        enc.put_u64(self.pulled);
    }

    fn load(dec: &mut vrl_snap::Decoder<'_>) -> Result<Self, vrl_snap::SnapError> {
        Ok(SchedCursor {
            queue: Vec::<Pending>::load(dec)?.into(),
            now: dec.take_u64()?,
            last_stall: <Option<u64>>::load(dec)?,
            pulled: dec.take_u64()?,
        })
    }
}

/// The cycle-accurate multi-bank scheduler.
///
/// # Example
///
/// ```
/// use vrl_dram_sim::policy::AutoRefresh;
/// use vrl_sched::{SchedConfig, Scheduler};
///
/// let config = SchedConfig::with_geometry(4, 64).expect("geometry");
/// let mut sched = Scheduler::new(config, AutoRefresh::new(64.0)).expect("config");
/// let stats = sched.run(std::iter::empty(), 64.0).expect("run");
/// // Every one of the 256 rows refreshed once per 64 ms.
/// assert_eq!(stats.sim.total_refreshes(), 256);
/// ```
#[derive(Debug)]
pub struct Scheduler<P: RefreshPolicy> {
    config: SchedConfig,
    policy: P,
    lanes: Vec<BankLane>,
    bus: BusState,
    stats: SchedStats,
}

impl<P: RefreshPolicy> Scheduler<P> {
    /// Creates a scheduler; each bank's initial deadlines are staggered
    /// across the row's period by the same hash the single-bank engines
    /// use, keyed by the global row index.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the queue depth is zero.
    pub fn new(config: SchedConfig, policy: P) -> Result<Self, Error> {
        if config.queue_depth == 0 {
            return Err(Error::InvalidConfig {
                reason: "scheduler queue must hold at least one request".into(),
            });
        }
        let mut lanes = Vec::with_capacity(config.banks() as usize);
        for bank in 0..config.banks() {
            let mut refreshes = RefreshQueue::new();
            for row in 0..config.rows_per_bank() {
                let global = config.global_row(bank, row);
                let period = config.timing.ms_to_cycles(policy.period_ms(global));
                let offset = if config.staggered {
                    (global as u64).wrapping_mul(2654435761) % period.max(1)
                } else {
                    0
                };
                refreshes.push(offset, row, offset);
            }
            lanes.push(BankLane {
                state: BankState::new(),
                refreshes,
            });
        }
        let banks = config.banks() as usize;
        Ok(Scheduler {
            config,
            policy,
            lanes,
            bus: BusState::default(),
            stats: SchedStats {
                per_bank_refreshes: vec![0; banks],
                per_bank_accesses: vec![0; banks],
                ..SchedStats::default()
            },
        })
    }

    /// The configuration.
    pub fn config(&self) -> &SchedConfig {
        &self.config
    }

    /// The policy, for inspection.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Runs the trace for `duration_ms`.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] if an internal scheduling invariant breaks;
    /// these indicate a bug rather than a property of the workload.
    pub fn run<I: Iterator<Item = TraceRecord>>(
        &mut self,
        trace: I,
        duration_ms: f64,
    ) -> Result<SchedStats, Error> {
        self.run_observed(trace, duration_ms, &mut NullObserver)
    }

    /// Runs with an observer receiving refresh/activate events, keyed
    /// by global row index (`bank * rows_per_bank + row`).
    ///
    /// # Errors
    ///
    /// See [`Scheduler::run`].
    pub fn run_observed<I, O>(
        &mut self,
        trace: I,
        duration_ms: f64,
        observer: &mut O,
    ) -> Result<SchedStats, Error>
    where
        I: Iterator<Item = TraceRecord>,
        O: SimObserver,
    {
        let end = self.config.timing.ms_to_cycles(duration_ms);
        let mut trace = trace.take_while(|r| r.cycle < end).peekable();
        let mut cursor = SchedCursor::new();
        self.run_span_observed(&mut cursor, &mut trace, end, u64::MAX, observer)?;
        Ok(self.finish(end))
    }

    /// Runs the scheduling loop until the clock reaches `stop_at` or all
    /// work before `end` is exhausted — the checkpointing building block.
    /// The pause point inserts no state change, so composing spans (with
    /// [`Scheduler::finish`] at the end) is bit-identical to
    /// [`Scheduler::run_observed`] by construction.
    ///
    /// Returns `true` if the run paused at `stop_at` with work remaining.
    ///
    /// # Errors
    ///
    /// See [`Scheduler::run`].
    pub fn run_span_observed<I, O>(
        &mut self,
        cursor: &mut SchedCursor,
        trace: &mut std::iter::Peekable<I>,
        end: u64,
        stop_at: u64,
        observer: &mut O,
    ) -> Result<bool, Error>
    where
        I: Iterator<Item = TraceRecord>,
        O: SimObserver,
    {
        loop {
            // Jump to the earliest cycle any bank accepts a command.
            let min_ready = self
                .lanes
                .iter()
                .map(|l| l.state.ready_at(cursor.now))
                .min()
                .unwrap_or(cursor.now);
            cursor.now = cursor.now.max(min_ready);
            if cursor.now >= stop_at {
                return Ok(true);
            }

            // Admit arrivals that have happened by `now`, steering each
            // to its bank.
            while cursor.queue.len() < self.config.queue_depth {
                match trace.peek() {
                    Some(&record) if record.cycle <= cursor.now => {
                        trace.next();
                        cursor.pulled += 1;
                        let (bank, row) = self.config.steer(record.row);
                        cursor.queue.push_back(Pending { record, bank, row });
                    }
                    _ => break,
                }
            }
            self.stats.max_queue_depth = self.stats.max_queue_depth.max(cursor.queue.len());
            // A full queue with an arrival already waiting is back
            // pressure; report each stalled cycle once.
            if cursor.queue.len() == self.config.queue_depth
                && trace.peek().is_some_and(|r| r.cycle <= cursor.now)
                && cursor.last_stall != Some(cursor.now)
            {
                cursor.last_stall = Some(cursor.now);
                self.stats.queue_stalls += 1;
                observer.on_queue_stall(cursor.now, cursor.queue.len());
            }

            // Refreshes due by `now` on free banks (postponed onto
            // contended banks when parallelization allows).
            if self.try_refresh(cursor.now, end, &cursor.queue, observer)? {
                continue;
            }

            // FR-FCFS demand on free banks.
            if let Some(idx) = self.pick(&cursor.queue, cursor.now) {
                if idx != 0 {
                    self.stats.reordered += 1;
                }
                let len = cursor.queue.len();
                let pending = cursor
                    .queue
                    .remove(idx)
                    .ok_or(Error::QueueIndexInvalid { index: idx, len })?;
                self.service(pending, cursor.now, observer);
                continue;
            }

            // Idle banks pull upcoming refreshes in early.
            let upcoming = trace.peek().map(|r| r.cycle);
            if self.try_pull_in(cursor.now, end, &cursor.queue, upcoming, observer) {
                continue;
            }

            // Nothing issuable at `now`: advance to the next arrival (if
            // it can be admitted), refresh deadline, or bank release.
            let next_arrival = upcoming.filter(|_| cursor.queue.len() < self.config.queue_depth);
            // A due refresh on a still-busy bank becomes issuable only
            // when the bank frees, so its advance target is the later of
            // the two.
            let next_refresh = self
                .lanes
                .iter_mut()
                .filter_map(|l| {
                    let due = l.refreshes.next_due()?;
                    (due < end).then(|| due.max(l.state.busy_until()))
                })
                .min();
            let next_release = self
                .lanes
                .iter()
                .enumerate()
                .filter(|(b, lane)| {
                    lane.state.busy_until() > cursor.now
                        && cursor.queue.iter().any(|p| p.bank == *b as u32)
                })
                .map(|(_, lane)| lane.state.busy_until())
                .min();
            match [next_arrival, next_refresh, next_release]
                .into_iter()
                .flatten()
                .min()
            {
                Some(t) if t > cursor.now => cursor.now = t,
                Some(_) => return Err(Error::SchedulerStalled { cycle: cursor.now }),
                None => return Ok(false),
            }
        }
    }

    /// Finalizes the statistics after the last span (the tail of
    /// [`Scheduler::run_observed`]).
    pub fn finish(&mut self, end: u64) -> SchedStats {
        self.stats.sim.total_cycles = end.max(
            self.lanes
                .iter()
                .map(|l| l.state.busy_until())
                .max()
                .unwrap_or(0),
        );
        self.stats.clone()
    }

    /// Appends the scheduler's full run-state — every bank lane's FSM
    /// and refresh wheel, the shared-bus arbitration state, statistics,
    /// policy counters, and the scheduling cursor — to `enc`, where `P`
    /// supports state capture.
    pub fn save_state(&self, enc: &mut vrl_snap::Encoder, cursor: &SchedCursor)
    where
        P: vrl_dram_sim::policy::PolicyState,
    {
        use vrl_snap::Snapshot as _;
        self.lanes.save(enc);
        self.bus.save(enc);
        self.stats.save(enc);
        self.policy.save_state(enc);
        cursor.save(enc);
    }

    /// Restores run-state captured by [`Scheduler::save_state`] into a
    /// freshly-constructed scheduler of the same configuration,
    /// returning the scheduling cursor to resume from.
    ///
    /// # Errors
    ///
    /// Returns [`vrl_snap::SnapError`] on truncated input or a snapshot
    /// from a differently-shaped scheduler (bank count).
    pub fn restore_state(
        &mut self,
        dec: &mut vrl_snap::Decoder<'_>,
    ) -> Result<SchedCursor, vrl_snap::SnapError>
    where
        P: vrl_dram_sim::policy::PolicyState,
    {
        use vrl_snap::Snapshot as _;
        let lanes = Vec::<BankLane>::load(dec)?;
        if lanes.len() != self.lanes.len() {
            return Err(vrl_snap::SnapError::Malformed {
                what: format!(
                    "scheduler has {} banks, snapshot has {}",
                    self.lanes.len(),
                    lanes.len()
                ),
            });
        }
        self.lanes = lanes;
        self.bus = BusState::load(dec)?;
        self.stats = SchedStats::load(dec)?;
        self.policy.restore_state(dec)?;
        SchedCursor::load(dec)
    }

    /// Issues at most one due refresh (due ≤ `now`, due < `end`) on a
    /// bank that is free at `now`. With parallelization on, a due
    /// refresh whose bank has queued demand is postponed while the
    /// elasticity window allows, and executes regardless once the
    /// window is exhausted (bounding staleness).
    fn try_refresh<O: SimObserver>(
        &mut self,
        now: u64,
        end: u64,
        queue: &VecDeque<Pending>,
        observer: &mut O,
    ) -> Result<bool, Error> {
        let horizon = now.saturating_add(1).min(end);
        loop {
            let mut best: Option<(u64, usize)> = None;
            for (b, lane) in self.lanes.iter_mut().enumerate() {
                if lane.state.ready_at(now) != now {
                    continue;
                }
                if let Some(due) = lane.refreshes.next_due() {
                    if due < horizon && best.is_none_or(|(d, _)| due < d) {
                        best = Some((due, b));
                    }
                }
            }
            let Some((_, bank)) = best else {
                return Ok(false);
            };
            let (due, row, original_due) = self.lanes[bank]
                .refreshes
                .pop_due_before(horizon)
                .ok_or(Error::SchedulerStalled { cycle: now })?;
            let contended = queue.iter().any(|p| p.bank == bank as u32);
            if self.config.parallel_refresh && contended {
                let deadline = original_due.saturating_add(self.config.slack);
                if now < deadline {
                    // Retry in coarse steps (an eighth of the window) so
                    // a long-contended refresh re-arbitrates a bounded
                    // number of times, but never past the window's edge
                    // (the pop after that executes unconditionally).
                    let step = (self.config.slack / 8)
                        .max(self.config.timing.tau_full)
                        .max(1);
                    let retry = (now + step).min(deadline).max(now + 1);
                    self.lanes[bank].refreshes.push(retry, row, original_due);
                    self.stats.sim.postponed_refreshes += 1;
                    observer.on_refresh_postponed(self.config.global_row(bank as u32, row), now);
                    continue;
                }
            }
            self.execute_refresh(bank, now.max(due), row, original_due, contended, observer);
            return Ok(true);
        }
    }

    /// With parallelization on, executes the next upcoming refresh of a
    /// free, demand-less bank up to `slack` cycles early. Early
    /// refreshes are always retention-safe; the next deadline still
    /// advances from the original one, so the schedule never drifts.
    ///
    /// Only fires when the next un-admitted arrival (if any) is at least
    /// a full refresh away: pulling in during a traffic burst's tail
    /// occupies the bank just as new demand lands, and the queueing
    /// backlog amplifies those few cycles into far more stall than the
    /// deferred refresh would ever have cost.
    fn try_pull_in<O: SimObserver>(
        &mut self,
        now: u64,
        end: u64,
        queue: &VecDeque<Pending>,
        next_arrival: Option<u64>,
        observer: &mut O,
    ) -> bool {
        if !self.config.parallel_refresh || self.config.slack == 0 {
            return false;
        }
        if next_arrival.is_some_and(|a| a < now + self.config.timing.tau_full) {
            return false;
        }
        let horizon = now
            .saturating_add(self.config.slack)
            .saturating_add(1)
            .min(end);
        for bank in 0..self.lanes.len() {
            if self.lanes[bank].state.ready_at(now) != now {
                continue;
            }
            if queue.iter().any(|p| p.bank == bank as u32) {
                continue;
            }
            if let Some((_, row, original_due)) = self.lanes[bank].refreshes.pop_due_before(horizon)
            {
                self.stats.pulled_in_refreshes += 1;
                observer.on_refresh_pull_in(self.config.global_row(bank as u32, row), now);
                self.execute_refresh(bank, now, row, original_due, false, observer);
                return true;
            }
        }
        false
    }

    /// FR-FCFS over requests whose bank is free at `now`: the oldest
    /// hitting its bank's open row, else the oldest.
    fn pick(&self, queue: &VecDeque<Pending>, now: u64) -> Option<usize> {
        let free = |p: &Pending| self.lanes[p.bank as usize].state.ready_at(now) == now;
        if let Some(idx) = queue
            .iter()
            .position(|p| free(p) && self.lanes[p.bank as usize].state.open_row() == Some(p.row))
        {
            return Some(idx);
        }
        queue.iter().position(free)
    }

    /// Executes one refresh on `bank` issuing at (or just after)
    /// `issue_at`.
    fn execute_refresh<O: SimObserver>(
        &mut self,
        bank: usize,
        issue_at: u64,
        row: u32,
        original_due: u64,
        contended: bool,
        observer: &mut O,
    ) {
        let timing = self.config.timing;
        let lane = &mut self.lanes[bank];
        let mut start = lane.state.ready_at(issue_at);
        start = self.bus.claim_cmd(start);
        let mut duration = 0;
        if lane.state.open_row().is_some() {
            lane.state.precharge();
            duration += timing.trp;
        }
        let global = self.config.global_row(bank as u32, row);
        let kind = self.policy.refresh_kind(global);
        let refresh_cycles = timing.refresh_cycles(kind);
        duration += refresh_cycles;
        let done = lane.state.occupy(start, duration);
        self.stats.sim.refresh_busy_cycles += refresh_cycles;
        if contended {
            self.stats.refresh_blocked_cycles += refresh_cycles;
        }
        match kind {
            RefreshLatency::Full => self.stats.sim.full_refreshes += 1,
            RefreshLatency::Partial => self.stats.sim.partial_refreshes += 1,
        }
        self.stats.per_bank_refreshes[bank] += 1;
        observer.on_refresh(global, kind, done);
        let period = timing.ms_to_cycles(self.policy.period_ms(global)).max(1);
        let next = original_due + period;
        self.lanes[bank].refreshes.push(next, row, next);
    }

    /// Services one queued request on its (free) bank, honoring the
    /// inter-bank activate and data-bus constraints.
    fn service<O: SimObserver>(&mut self, pending: Pending, now: u64, observer: &mut O) {
        let timing = self.config.timing;
        let bank = pending.bank as usize;
        let hit = self.lanes[bank].state.open_row() == Some(pending.row);
        let latency = if hit {
            timing.hit_latency()
        } else if self.lanes[bank].state.open_row().is_some() {
            timing.miss_latency()
        } else {
            timing.trcd + timing.tcl
        };
        let cas_offset = latency - timing.tcl;
        let is_write = pending.record.op == Op::Write;

        let mut start = self.lanes[bank].state.ready_at(now);
        if !hit {
            start = self.bus.act_bound(start, pending.bank, &timing);
        }
        start = self
            .bus
            .cas_bound(start, cas_offset, pending.bank, is_write, &timing);
        start = self.bus.claim_cmd(start);

        self.stats.sim.stall_cycles += start - pending.record.cycle;
        self.stats.sim.accesses += 1;
        self.stats.per_bank_accesses[bank] += 1;
        if hit {
            self.stats.sim.row_hits += 1;
        } else {
            self.stats.sim.row_misses += 1;
        }
        let done = self.lanes[bank].state.occupy(start, latency);
        if !hit {
            self.lanes[bank].state.set_open_row(pending.row);
            let global = self.config.global_row(pending.bank, pending.row);
            self.policy.on_activate(global);
            observer.on_activate(global, start);
            self.bus.note_act(start, pending.bank);
        }
        self.bus
            .note_cas(start + cas_offset, pending.bank, is_write);
        if pending.record.op == Op::Read {
            self.stats.read_latency.record(done - pending.record.cycle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrl_dram_sim::policy::AutoRefresh;

    fn sparse_trace(n: u64, stride: u64, rows: u32) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| TraceRecord::new(i * stride, Op::Read, (i % rows as u64) as u32))
            .collect()
    }

    #[test]
    fn zero_queue_depth_is_rejected() {
        let config = SchedConfig::with_geometry(2, 16)
            .expect("geometry")
            .with_queue_depth(0);
        let err = Scheduler::new(config, AutoRefresh::new(64.0)).expect_err("zero depth");
        assert!(matches!(err, Error::InvalidConfig { .. }));
    }

    #[test]
    fn refresh_only_run_covers_every_row() {
        let config = SchedConfig::with_geometry(4, 32).expect("geometry");
        let mut sched = Scheduler::new(config, AutoRefresh::new(64.0)).expect("config");
        let stats = sched.run(std::iter::empty(), 64.0).expect("run");
        assert_eq!(stats.sim.total_refreshes(), 4 * 32);
        assert_eq!(stats.sim.refresh_busy_cycles, 4 * 32 * 19);
        assert!(stats.per_bank_refreshes.iter().all(|&n| n == 32));
    }

    #[test]
    fn accesses_spread_across_banks() {
        let config = SchedConfig::with_geometry(4, 64).expect("geometry");
        let mut sched = Scheduler::new(config, AutoRefresh::new(64.0)).expect("config");
        // Consecutive row indices stripe across the 4 banks.
        let stats = sched
            .run(sparse_trace(4000, 50, 4 * 64).into_iter(), 1.0)
            .expect("run");
        assert_eq!(stats.sim.accesses, 4000);
        for (b, &n) in stats.per_bank_accesses.iter().enumerate() {
            assert_eq!(n, 1000, "bank {b}: {n}");
        }
        assert_eq!(stats.read_latency.count(), 4000);
    }

    #[test]
    fn multi_bank_overlap_beats_a_single_bank() {
        // The same demand stream over 4 banks vs 1 bank (same total
        // rows): bank-level parallelism must cut aggregate stall time.
        let trace = |rows: u32| sparse_trace(20_000, 8, rows);
        let quad = SchedConfig::with_geometry(4, 64).expect("geometry");
        let mono = SchedConfig::with_geometry(1, 256).expect("geometry");
        let mut sched4 = Scheduler::new(quad, AutoRefresh::new(64.0)).expect("config");
        let mut sched1 = Scheduler::new(mono, AutoRefresh::new(64.0)).expect("config");
        let s4 = sched4.run(trace(256).into_iter(), 1.0).expect("run");
        let s1 = sched1.run(trace(256).into_iter(), 1.0).expect("run");
        assert_eq!(s4.sim.accesses, s1.sim.accesses);
        assert!(
            s4.sim.stall_cycles < s1.sim.stall_cycles / 2,
            "4 banks must overlap service: {} vs {}",
            s4.sim.stall_cycles,
            s1.sim.stall_cycles
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let config = SchedConfig::with_geometry(8, 32).expect("geometry");
        let run = || {
            let mut sched = Scheduler::new(config, AutoRefresh::new(64.0)).expect("config");
            sched
                .run(sparse_trace(10_000, 17, 256).into_iter(), 64.0)
                .expect("run")
        };
        assert_eq!(run(), run());
    }

    /// Bursts of back-to-back demand with idle gaps in between: the
    /// pattern refresh-access parallelization exists for. Refreshes due
    /// inside a burst defer to the gap (the window is much wider than a
    /// burst), so demand stops seeing them.
    fn bursty_trace(bursts: u64, burst_len: u64, gap: u64, rows: u32) -> Vec<TraceRecord> {
        let mut trace = Vec::with_capacity((bursts * burst_len) as usize);
        for b in 0..bursts {
            for i in 0..burst_len {
                let idx = (b * burst_len + i) % rows as u64;
                trace.push(TraceRecord::new(b * gap + i, Op::Read, idx as u32));
            }
        }
        trace
    }

    #[test]
    fn parallelization_postpones_contended_refreshes() {
        let config = SchedConfig::with_geometry(4, 1024).expect("geometry");
        let trace = bursty_trace(1280, 400, 50_000, 4096);
        let mut plain =
            Scheduler::new(config.with_parallelism(false), AutoRefresh::new(64.0)).expect("config");
        let mut dsarp =
            Scheduler::new(config.with_parallelism(true), AutoRefresh::new(64.0)).expect("config");
        let p = plain.run(trace.clone().into_iter(), 64.0).expect("run");
        let d = dsarp.run(trace.into_iter(), 64.0).expect("run");
        assert!(
            p.refresh_blocked_cycles > 0,
            "bursts must collide with refreshes at all"
        );
        assert!(d.sim.postponed_refreshes > 0);
        assert!(
            d.refresh_blocked_cycles < p.refresh_blocked_cycles / 4,
            "parallelization must hide refreshes from demand: {} vs {}",
            d.refresh_blocked_cycles,
            p.refresh_blocked_cycles
        );
        assert!(
            d.sim.stall_cycles <= p.sim.stall_cycles,
            "deferring refreshes must not slow demand: {} vs {}",
            d.sim.stall_cycles,
            p.sim.stall_cycles
        );
    }

    #[test]
    fn scheduler_snapshot_resume_is_bit_identical() {
        use vrl_dram_sim::policy::VrlAccess;
        use vrl_retention::binning::BinningTable;
        use vrl_retention::profile::BankProfile;

        let config = SchedConfig::with_geometry(4, 64)
            .expect("geometry")
            .with_parallelism(true);
        let rows = (4 * 64) as usize;
        let bins = BinningTable::from_profile(&BankProfile::from_rows(
            std::iter::repeat_n(300.0, rows),
            32,
        ));
        let mk =
            || Scheduler::new(config, VrlAccess::new(bins.clone(), vec![3; rows])).expect("config");
        let trace = bursty_trace(40, 100, 50_000, 256);
        let end = config.timing.ms_to_cycles(64.0);

        let mut whole = mk();
        let expected = whole.run(trace.clone().into_iter(), 64.0).expect("run");

        // Run to an arbitrary mid-run cycle, snapshot, and "crash".
        let mut first = mk();
        let mut cursor = SchedCursor::new();
        let mut records = trace
            .clone()
            .into_iter()
            .take_while(|r| r.cycle < end)
            .peekable();
        let paused = first
            .run_span_observed(&mut cursor, &mut records, end, end / 2, &mut NullObserver)
            .expect("span");
        assert!(paused, "pausing mid-run must leave work");
        let mut enc = vrl_snap::Encoder::new();
        first.save_state(&mut enc, &cursor);
        let bytes = enc.into_bytes();
        drop(first);

        // Resume into a fresh scheduler, skipping the pulled records.
        let mut resumed = mk();
        let mut dec = vrl_snap::Decoder::new(&bytes);
        let mut cursor = resumed.restore_state(&mut dec).expect("restore");
        dec.finish().expect("no trailing bytes");
        let mut rest = trace
            .into_iter()
            .skip(cursor.pulled() as usize)
            .take_while(|r| r.cycle < end)
            .peekable();
        resumed
            .run_span_observed(&mut cursor, &mut rest, end, u64::MAX, &mut NullObserver)
            .expect("resume");
        assert_eq!(resumed.finish(end), expected);
    }

    #[test]
    fn command_bus_issues_at_most_one_command_per_cycle() {
        struct Cmds {
            starts: Vec<u64>,
        }
        impl SimObserver for Cmds {
            fn on_refresh(&mut self, _row: u32, _k: RefreshLatency, _c: u64) {}
            fn on_activate(&mut self, _row: u32, cycle: u64) {
                self.starts.push(cycle);
            }
        }
        let config = SchedConfig::with_geometry(8, 32).expect("geometry");
        let mut sched = Scheduler::new(config, AutoRefresh::new(64.0)).expect("config");
        let mut obs = Cmds { starts: Vec::new() };
        // A burst of simultaneous arrivals across all banks.
        let trace: Vec<TraceRecord> = (0..64u64)
            .map(|i| TraceRecord::new(0, Op::Read, i as u32))
            .collect();
        sched
            .run_observed(trace.into_iter(), 1.0, &mut obs)
            .expect("run");
        let mut starts = obs.starts.clone();
        starts.sort_unstable();
        starts.dedup();
        assert_eq!(starts.len(), obs.starts.len(), "activate cycles collide");
    }
}
