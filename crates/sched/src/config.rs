//! Scheduler configuration: DIMM geometry, timing, and the refresh
//! scheduling knobs.

use serde::{Deserialize, Serialize};

use vrl_dram_sim::error::Error;
use vrl_dram_sim::timing::TimingParams;
use vrl_trace::addr::AddressMap;

/// Configuration of the multi-bank command scheduler.
///
/// The DIMM geometry comes from the [`AddressMap`]: `2^channel_bits`
/// channels of `2^rank_bits` ranks of `2^bank_bits` banks of
/// `2^row_bits` rows each. Trace records carry a flat row index; the
/// scheduler steers each request through the map's interleaved layout,
/// so consecutive indices stripe across channels, then banks, then
/// ranks, before rows (see [`SchedConfig::steer`]).
///
/// Constraint scoping follows the hardware: `tRRD`/`tFAW` bind
/// activates within one **rank** (the shared charge-pump/power network),
/// `tRFC` spaces refresh starts within one rank, while `tCCD`, bus
/// turnaround, and the one-command-per-cycle command bus bind within
/// one **channel** (the shared address/data buses). Channels share
/// nothing, which is what makes channel-sharded execution exact.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedConfig {
    /// Timing parameters (per-bank core timings plus the rank-scoped
    /// `tRRD`, `tFAW`, `tRFC` and channel-scoped `tCCD`/turnaround).
    pub timing: TimingParams,
    /// Address mapping defining the DIMM geometry and request steering.
    pub map: AddressMap,
    /// Request-queue depth, per channel.
    pub queue_depth: usize,
    /// JEDEC-style refresh elasticity window in cycles: how far past its
    /// deadline a refresh may be postponed in favor of queued demand,
    /// and how far before its deadline an idle bank may pull it in.
    /// Only consulted when [`SchedConfig::parallel_refresh`] is on.
    pub slack: u64,
    /// DSARP-style refresh-access parallelization: steer refreshes to
    /// banks with no queued demand, postponing (within [`Self::slack`])
    /// on contended banks and pulling refreshes in on idle ones. When
    /// off, the scheduler is strictly refresh-first per bank, like
    /// [`vrl_dram_sim::controller::FrFcfsController`].
    pub parallel_refresh: bool,
    /// Whether initial refresh deadlines are staggered across each
    /// row's period (distributed refresh) or aligned (burst refresh).
    pub staggered: bool,
}

impl SchedConfig {
    /// The paper's evaluation rank: 1 channel × 1 rank × 8 banks × 8192
    /// rows, DDR3-like timings, a 32-deep queue, parallelized refresh
    /// with a 64 µs elasticity window.
    pub fn paper_default() -> Self {
        SchedConfig {
            timing: TimingParams::paper_default(),
            map: AddressMap::paper_default(),
            queue_depth: 32,
            slack: 64_000,
            parallel_refresh: true,
            staggered: true,
        }
    }

    /// A single-channel single-rank system of `banks` × `rows_per_bank`
    /// (both powers of two) at the paper's timings.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if either count is zero or not a
    /// power of two (the address map needs whole bit fields).
    pub fn with_geometry(banks: u32, rows_per_bank: u32) -> Result<Self, Error> {
        Self::with_dimm_geometry(1, 1, banks, rows_per_bank)
    }

    /// A full DIMM of `channels` × `ranks` × `banks_per_rank` ×
    /// `rows_per_bank` (all powers of two) at the paper's timings.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any count is zero or not a
    /// power of two (the address map needs whole bit fields).
    pub fn with_dimm_geometry(
        channels: u32,
        ranks: u32,
        banks_per_rank: u32,
        rows_per_bank: u32,
    ) -> Result<Self, Error> {
        let field = |what: &str, n: u32| -> Result<u32, Error> {
            if n == 0 || !n.is_power_of_two() {
                return Err(Error::InvalidConfig {
                    reason: format!("{what} must be a power of two, got {n}"),
                });
            }
            Ok(n.trailing_zeros())
        };
        let channel_bits = field("channel count", channels)?;
        let rank_bits = field("rank count", ranks)?;
        let bank_bits = field("bank count", banks_per_rank)?;
        let row_bits = field("rows per bank", rows_per_bank)?;
        Ok(SchedConfig {
            map: AddressMap {
                channel_bits,
                rank_bits,
                bank_bits,
                row_bits,
                ..AddressMap::paper_default()
            },
            ..Self::paper_default()
        })
    }

    /// Sets the request-queue depth (per channel).
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Sets the refresh elasticity window.
    #[must_use]
    pub fn with_slack(mut self, slack_cycles: u64) -> Self {
        self.slack = slack_cycles;
        self
    }

    /// Enables or disables refresh-access parallelization.
    #[must_use]
    pub fn with_parallelism(mut self, on: bool) -> Self {
        self.parallel_refresh = on;
        self
    }

    /// Switches to burst refresh (all rows initially due together).
    #[must_use]
    pub fn with_burst_refresh(mut self) -> Self {
        self.staggered = false;
        self
    }

    /// Sets the per-rank refresh-to-refresh start spacing `tRFC`.
    #[must_use]
    pub fn with_trfc(mut self, trfc: u64) -> Self {
        self.timing.trfc = trfc;
        self
    }

    /// Channels in the system.
    pub fn channels(&self) -> u32 {
        1 << self.map.channel_bits
    }

    /// Ranks per channel.
    pub fn ranks(&self) -> u32 {
        1 << self.map.rank_bits
    }

    /// Banks per rank.
    pub fn banks_per_rank(&self) -> u32 {
        1 << self.map.bank_bits
    }

    /// Total banks across the DIMM (channels × ranks × banks per rank) —
    /// the range of global bank indices the stats and observers see.
    pub fn banks(&self) -> u32 {
        self.channels() * self.ranks() * self.banks_per_rank()
    }

    /// Banks owned by one channel (ranks × banks per rank).
    pub fn banks_per_channel(&self) -> u32 {
        self.ranks() * self.banks_per_rank()
    }

    /// Rows per bank.
    pub fn rows_per_bank(&self) -> u32 {
        1 << self.map.row_bits
    }

    /// Total rows across the DIMM — the range of global row indices the
    /// refresh policy and observers see.
    pub fn total_rows(&self) -> u32 {
        self.banks() * self.rows_per_bank()
    }

    /// The channel that owns global bank `bank`. Global bank indices
    /// are channel-major (`channel`, then `rank`, then bank-in-rank),
    /// so each channel owns one contiguous range.
    pub fn channel_of_bank(&self, bank: u32) -> u32 {
        bank / self.banks_per_channel()
    }

    /// The rank (within its channel) that owns global bank `bank`.
    pub fn rank_of_bank(&self, bank: u32) -> u32 {
        (bank / self.banks_per_rank()) % self.ranks()
    }

    /// Steers a trace record's flat row index to a `(global bank, row)`
    /// pair through the address map: the index is treated as a line
    /// number, so its low bits select the channel, then the bank, then
    /// the rank, and the remaining bits the row — the map's interleaved
    /// layout with the column field zero. The global bank index is
    /// channel-major: `(channel × ranks + rank) × banks_per_rank +
    /// bank`. With one channel and one rank this reduces to the
    /// historical bank-striped layout, and with a single bank to
    /// `index % rows_per_bank` — exactly how the single-bank engines
    /// fold row indices.
    pub fn steer(&self, row_index: u32) -> (u32, u32) {
        let addr = (row_index as u64) << (self.map.offset_bits + self.map.column_bits);
        let loc = self.map.decode(addr);
        let global_bank =
            (loc.channel * self.ranks() + loc.rank) * self.banks_per_rank() + loc.bank;
        (global_bank, loc.row)
    }

    /// The global row index of `(global bank, row)` — the identifier
    /// reported to the refresh policy and observers.
    pub fn global_row(&self, bank: u32, row: u32) -> u32 {
        bank * self.rows_per_bank() + row
    }
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_accessors_match_the_map() {
        let c = SchedConfig::with_geometry(8, 1024).expect("powers of two");
        assert_eq!(c.banks(), 8);
        assert_eq!(c.rows_per_bank(), 1024);
        assert_eq!(c.total_rows(), 8192);
        assert_eq!(c.channels(), 1);
        assert_eq!(c.ranks(), 1);
        assert_eq!(c.banks_per_rank(), 8);
    }

    #[test]
    fn dimm_geometry_accessors_multiply_out() {
        let c = SchedConfig::with_dimm_geometry(2, 2, 16, 128).expect("powers of two");
        assert_eq!(c.channels(), 2);
        assert_eq!(c.ranks(), 2);
        assert_eq!(c.banks_per_rank(), 16);
        assert_eq!(c.banks_per_channel(), 32);
        assert_eq!(c.banks(), 64);
        assert_eq!(c.total_rows(), 64 * 128);
    }

    #[test]
    fn non_power_of_two_geometry_is_rejected() {
        for (banks, rows) in [(0, 64), (3, 64), (4, 0), (4, 100)] {
            let err = SchedConfig::with_geometry(banks, rows).expect_err("invalid");
            assert!(matches!(err, Error::InvalidConfig { .. }), "{err:?}");
        }
        for (ch, rk) in [(0, 1), (3, 1), (1, 0), (1, 5)] {
            let err = SchedConfig::with_dimm_geometry(ch, rk, 4, 64).expect_err("invalid");
            assert!(matches!(err, Error::InvalidConfig { .. }), "{err:?}");
        }
    }

    #[test]
    fn steering_stripes_banks_before_rows() {
        let c = SchedConfig::with_geometry(4, 16).expect("geometry");
        assert_eq!(c.steer(0), (0, 0));
        assert_eq!(c.steer(1), (1, 0));
        assert_eq!(c.steer(3), (3, 0));
        assert_eq!(c.steer(4), (0, 1));
        assert_eq!(c.steer(4 * 16), (0, 0), "wraps past the rank");
    }

    #[test]
    fn steering_stripes_channels_then_banks_then_ranks() {
        let c = SchedConfig::with_dimm_geometry(2, 2, 4, 16).expect("geometry");
        // Index bit layout (low to high): channel, bank, rank, row.
        assert_eq!(c.steer(0), (0, 0), "channel 0, rank 0, bank 0");
        assert_eq!(c.steer(1), (8, 0), "channel 1 owns banks 8..16");
        assert_eq!(c.steer(2), (1, 0), "next bank in channel 0");
        assert_eq!(c.steer(8), (4, 0), "rank 1 of channel 0 starts at 4");
        assert_eq!(c.steer(9), (12, 0), "rank 1 of channel 1 starts at 12");
        assert_eq!(c.steer(16), (0, 1), "past all banks: next row");
        // Every global bank is hit exactly once per 16 consecutive lines.
        let mut seen = vec![false; c.banks() as usize];
        for idx in 0..16 {
            let (bank, row) = c.steer(idx);
            assert_eq!(row, 0);
            assert!(!seen[bank as usize]);
            seen[bank as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bank_ownership_is_channel_major_and_contiguous() {
        let c = SchedConfig::with_dimm_geometry(2, 2, 4, 16).expect("geometry");
        for bank in 0..c.banks() {
            assert_eq!(c.channel_of_bank(bank), bank / 8);
            assert_eq!(c.rank_of_bank(bank), (bank / 4) % 2);
        }
    }

    #[test]
    fn single_bank_steering_is_a_modulo() {
        let c = SchedConfig::with_geometry(1, 64).expect("geometry");
        for idx in [0u32, 1, 63, 64, 130] {
            assert_eq!(c.steer(idx), (0, idx % 64));
        }
    }

    #[test]
    fn global_rows_are_dense_and_unique() {
        let c = SchedConfig::with_dimm_geometry(2, 1, 2, 8).expect("geometry");
        let mut seen = vec![false; c.total_rows() as usize];
        for bank in 0..c.banks() {
            for row in 0..c.rows_per_bank() {
                let g = c.global_row(bank, row) as usize;
                assert!(!seen[g]);
                seen[g] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
