//! Scheduler configuration: rank geometry, timing, and the refresh
//! scheduling knobs.

use serde::{Deserialize, Serialize};

use vrl_dram_sim::error::Error;
use vrl_dram_sim::timing::TimingParams;
use vrl_trace::addr::AddressMap;

/// Configuration of the multi-bank command scheduler.
///
/// The rank geometry comes from the [`AddressMap`]: `2^bank_bits` banks
/// of `2^row_bits` rows each. Trace records carry a flat row index; the
/// scheduler steers each request through the map's row-interleaved
/// layout, so consecutive indices stripe across banks before rows (see
/// [`SchedConfig::steer`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedConfig {
    /// Timing parameters (per-bank core timings plus the inter-bank
    /// constraints `tRRD`, `tFAW`, `tCCD`, and bus turnaround).
    pub timing: TimingParams,
    /// Address mapping defining the rank geometry and request steering.
    pub map: AddressMap,
    /// Request-queue depth shared by all banks.
    pub queue_depth: usize,
    /// JEDEC-style refresh elasticity window in cycles: how far past its
    /// deadline a refresh may be postponed in favor of queued demand,
    /// and how far before its deadline an idle bank may pull it in.
    /// Only consulted when [`SchedConfig::parallel_refresh`] is on.
    pub slack: u64,
    /// DSARP-style refresh-access parallelization: steer refreshes to
    /// banks with no queued demand, postponing (within [`Self::slack`])
    /// on contended banks and pulling refreshes in on idle ones. When
    /// off, the scheduler is strictly refresh-first per bank, like
    /// [`vrl_dram_sim::controller::FrFcfsController`].
    pub parallel_refresh: bool,
    /// Whether initial refresh deadlines are staggered across each
    /// row's period (distributed refresh) or aligned (burst refresh).
    pub staggered: bool,
}

impl SchedConfig {
    /// The paper's evaluation rank: 8 banks × 8192 rows, DDR3-like
    /// timings, a 32-deep queue, parallelized refresh with a 64 µs
    /// elasticity window.
    pub fn paper_default() -> Self {
        SchedConfig {
            timing: TimingParams::paper_default(),
            map: AddressMap::paper_default(),
            queue_depth: 32,
            slack: 64_000,
            parallel_refresh: true,
            staggered: true,
        }
    }

    /// A rank of `banks` × `rows_per_bank` (both powers of two) at the
    /// paper's timings.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if either count is zero or not a
    /// power of two (the address map needs whole bit fields).
    pub fn with_geometry(banks: u32, rows_per_bank: u32) -> Result<Self, Error> {
        let field = |what: &str, n: u32| -> Result<u32, Error> {
            if n == 0 || !n.is_power_of_two() {
                return Err(Error::InvalidConfig {
                    reason: format!("{what} must be a power of two, got {n}"),
                });
            }
            Ok(n.trailing_zeros())
        };
        let bank_bits = field("bank count", banks)?;
        let row_bits = field("rows per bank", rows_per_bank)?;
        Ok(SchedConfig {
            map: AddressMap {
                bank_bits,
                row_bits,
                ..AddressMap::paper_default()
            },
            ..Self::paper_default()
        })
    }

    /// Sets the request-queue depth.
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Sets the refresh elasticity window.
    #[must_use]
    pub fn with_slack(mut self, slack_cycles: u64) -> Self {
        self.slack = slack_cycles;
        self
    }

    /// Enables or disables refresh-access parallelization.
    #[must_use]
    pub fn with_parallelism(mut self, on: bool) -> Self {
        self.parallel_refresh = on;
        self
    }

    /// Switches to burst refresh (all rows initially due together).
    #[must_use]
    pub fn with_burst_refresh(mut self) -> Self {
        self.staggered = false;
        self
    }

    /// Banks in the rank.
    pub fn banks(&self) -> u32 {
        1 << self.map.bank_bits
    }

    /// Rows per bank.
    pub fn rows_per_bank(&self) -> u32 {
        1 << self.map.row_bits
    }

    /// Total rows across the rank — the range of global row indices the
    /// refresh policy and observers see.
    pub fn total_rows(&self) -> u32 {
        self.banks() * self.rows_per_bank()
    }

    /// Steers a trace record's flat row index to a `(bank, row)` pair
    /// through the address map: the index is treated as a line number,
    /// so its low `bank_bits` select the bank and the next `row_bits`
    /// the row — the map's row-interleaved layout with the column field
    /// zero. With one bank this reduces to `index % rows_per_bank`,
    /// which is exactly how the single-bank engines fold row indices.
    pub fn steer(&self, row_index: u32) -> (u32, u32) {
        let addr = (row_index as u64) << (self.map.offset_bits + self.map.column_bits);
        let loc = self.map.decode(addr);
        (loc.bank, loc.row)
    }

    /// The global row index of `(bank, row)` — the identifier reported
    /// to the refresh policy and observers.
    pub fn global_row(&self, bank: u32, row: u32) -> u32 {
        bank * self.rows_per_bank() + row
    }
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_accessors_match_the_map() {
        let c = SchedConfig::with_geometry(8, 1024).expect("powers of two");
        assert_eq!(c.banks(), 8);
        assert_eq!(c.rows_per_bank(), 1024);
        assert_eq!(c.total_rows(), 8192);
    }

    #[test]
    fn non_power_of_two_geometry_is_rejected() {
        for (banks, rows) in [(0, 64), (3, 64), (4, 0), (4, 100)] {
            let err = SchedConfig::with_geometry(banks, rows).expect_err("invalid");
            assert!(matches!(err, Error::InvalidConfig { .. }), "{err:?}");
        }
    }

    #[test]
    fn steering_stripes_banks_before_rows() {
        let c = SchedConfig::with_geometry(4, 16).expect("geometry");
        assert_eq!(c.steer(0), (0, 0));
        assert_eq!(c.steer(1), (1, 0));
        assert_eq!(c.steer(3), (3, 0));
        assert_eq!(c.steer(4), (0, 1));
        assert_eq!(c.steer(4 * 16), (0, 0), "wraps past the rank");
    }

    #[test]
    fn single_bank_steering_is_a_modulo() {
        let c = SchedConfig::with_geometry(1, 64).expect("geometry");
        for idx in [0u32, 1, 63, 64, 130] {
            assert_eq!(c.steer(idx), (0, idx % 64));
        }
    }

    #[test]
    fn global_rows_are_dense_and_unique() {
        let c = SchedConfig::with_geometry(4, 8).expect("geometry");
        let mut seen = vec![false; c.total_rows() as usize];
        for bank in 0..c.banks() {
            for row in 0..c.rows_per_bank() {
                let g = c.global_row(bank, row) as usize;
                assert!(!seen[g]);
                seen[g] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
