//! Steady-state allocation audit for the SoA scheduling hot loop.
//!
//! A counting global allocator wraps the system allocator; the test
//! warms the scheduler up (growing every queue, buffer, wheel slot, and
//! histogram to its working capacity), snapshots the allocation
//! counter, runs a further demand-plus-refresh phase identical in shape
//! to the warmup, and demands **zero** new allocations: the hot loop's
//! bank state is flat arrays, the `tFAW` window is a fixed ring, the
//! timing wheel recycles drained slot buffers through its scratch swap,
//! and request queues/buffers reuse their capacity.
//!
//! The refresh period is pinned to exactly half the wheel's ring window
//! (`2^27` cycles), so every row's deadlines alternate between two ring
//! slots forever; after two periods both slots (and the drain scratch)
//! carry circulating capacity and wheel pushes stop allocating. One
//! test per binary: the counter is process-global.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use vrl_dram_sim::policy::AutoRefresh;
use vrl_dram_sim::sim::NullObserver;
use vrl_sched::{SchedConfig, SchedCursor, Scheduler};
use vrl_trace::{Op, TraceRecord};

struct Counting;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

/// Identical burst shapes in the warmup and measured phases, so every
/// capacity the measured phase needs was already grown during warmup.
fn bursts(from_cycle: u64, until_cycle: u64, rows: u32) -> Vec<TraceRecord> {
    const GAP: u64 = 1 << 22;
    const BURST_LEN: u64 = 64;
    let mut trace = Vec::new();
    let mut start = from_cycle;
    let mut n = 0u64;
    while start < until_cycle {
        for i in 0..BURST_LEN {
            let idx = (n * BURST_LEN + i) % rows as u64;
            trace.push(TraceRecord::new(start + i, Op::Read, idx as u32));
        }
        n += 1;
        start += GAP;
    }
    trace
}

#[test]
fn steady_state_scheduling_does_not_allocate() {
    // Half the ring window exactly: deadlines alternate between two
    // wheel slots per row set (see the module docs).
    const PERIOD_MS: f64 = 134.217728;
    const PERIOD: u64 = 1 << 27;
    // Two full periods of warmup cycle every wheel slot the run will
    // ever touch; measure over the third period.
    const WARMUP: u64 = 2 * PERIOD + (PERIOD >> 2);
    const END: u64 = 4 * PERIOD;

    let config = SchedConfig::with_dimm_geometry(1, 1, 2, 32)
        .expect("geometry")
        .with_parallelism(false)
        .with_burst_refresh();
    let total_rows = config.total_rows();
    assert_eq!(config.timing.ms_to_cycles(PERIOD_MS), PERIOD);

    let trace = bursts(0, END, total_rows);
    let mut sched = Scheduler::new(config, AutoRefresh::new(PERIOD_MS)).expect("config");
    let mut cursor = SchedCursor::new();
    let mut records = trace.into_iter().take_while(|r| r.cycle < END).peekable();

    let paused = sched
        .run_span_observed(&mut cursor, &mut records, END, WARMUP, &mut NullObserver)
        .expect("warmup span");
    assert!(paused, "warmup must stop mid-run");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    sched
        .run_span_observed(&mut cursor, &mut records, END, u64::MAX, &mut NullObserver)
        .expect("measured span");
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "the steady-state scheduling loop must not allocate"
    );

    // The run did real work after the warmup boundary.
    let stats = sched.finish(END);
    assert!(stats.sim.accesses > 0);
    assert!(stats.sim.total_refreshes() >= 2 * u64::from(total_rows));
}
