//! The scheduler's two contract tests against the single-bank engines.
//!
//! 1. **Degeneracy**: with one bank and parallelization disabled, the
//!    scheduler's decision loop is structurally the controller's —
//!    refresh-first, FR-FCFS pick, idle jump — and the inter-bank
//!    constraints cannot bind, so every counter must be bit-identical
//!    to [`FrFcfsController`] across policies and traffic shapes.
//! 2. **Parallelization**: with ≥ 4 banks and the elasticity window on,
//!    demand-visible refresh time collapses for VRL and VRL-Access
//!    (and VRL-Access converts deferred refreshes to partials, cutting
//!    raw refresh-busy time too), with zero integrity violations.

use vrl_dram_sim::controller::FrFcfsController;
use vrl_dram_sim::integrity::{IntegrityChecker, LinearPhysics};
use vrl_dram_sim::policy::{AutoRefresh, Raidr, RefreshPolicy, Vrl, VrlAccess};
use vrl_dram_sim::sim::SimConfig;
use vrl_dram_sim::timing::TimingParams;
use vrl_retention::binning::BinningTable;
use vrl_retention::profile::BankProfile;
use vrl_sched::{SchedConfig, Scheduler};
use vrl_trace::{Op, TraceRecord};

const ROWS: u32 = 64;

fn bins_all(retention_ms: f64, rows: usize) -> BinningTable {
    BinningTable::from_profile(&BankProfile::from_rows(
        std::iter::repeat_n(retention_ms, rows),
        32,
    ))
}

/// Row-buffer-thrashing pairs: exercises FR-FCFS reordering.
fn thrash_trace() -> Vec<TraceRecord> {
    (0..4000u64)
        .map(|i| TraceRecord::new(i * 2, Op::Read, (i % 2) as u32 * 7))
        .collect()
}

/// Sparse mixed reads/writes over many rows.
fn sparse_trace() -> Vec<TraceRecord> {
    (0..2000u64)
        .map(|i| {
            let op = if i % 3 == 0 { Op::Write } else { Op::Read };
            TraceRecord::new(i * 37, op, (i % 113) as u32)
        })
        .collect()
}

/// Dense bursts separated by idle gaps.
fn bursty_trace(bursts: u64, burst_len: u64, gap: u64, rows: u32) -> Vec<TraceRecord> {
    let mut trace = Vec::with_capacity((bursts * burst_len) as usize);
    for b in 0..bursts {
        for i in 0..burst_len {
            let idx = (b * burst_len + i) % rows as u64;
            trace.push(TraceRecord::new(b * gap + i, Op::Read, idx as u32));
        }
    }
    trace
}

/// Runs the same policy (built fresh per engine — policies are stateful)
/// through both engines and demands bit-identical counters.
fn assert_bit_identical<P, F>(make_policy: F, trace: &[TraceRecord], what: &str)
where
    P: RefreshPolicy,
    F: Fn() -> P,
{
    let sched_config = SchedConfig::with_geometry(1, ROWS)
        .expect("geometry")
        .with_parallelism(false)
        .with_slack(0)
        .with_queue_depth(16);
    let mut sched = Scheduler::new(sched_config, make_policy()).expect("config");
    let s = sched
        .run(trace.iter().copied(), 64.0)
        .unwrap_or_else(|e| panic!("scheduler run ({what}): {e}"));

    let mut controller =
        FrFcfsController::new(SimConfig::with_rows(ROWS), make_policy(), 16).expect("valid depth");
    let c = controller
        .run(trace.iter().copied(), 64.0)
        .unwrap_or_else(|e| panic!("controller run ({what}): {e}"));

    assert_eq!(s.sim, c.sim, "SimStats diverged ({what})");
    assert_eq!(s.reordered, c.reordered, "reorderings diverged ({what})");
    assert_eq!(
        s.max_queue_depth, c.max_queue_depth,
        "queue depth diverged ({what})"
    );
    assert_eq!(s.pulled_in_refreshes, 0, "pull-in must be off");
}

#[test]
fn single_bank_scheduler_is_bit_identical_to_the_controller() {
    let traces: [(&str, Vec<TraceRecord>); 4] = [
        ("empty", Vec::new()),
        ("thrash", thrash_trace()),
        ("sparse", sparse_trace()),
        ("bursty", bursty_trace(40, 100, 500_000, ROWS)),
    ];
    for (name, trace) in &traces {
        assert_bit_identical(|| AutoRefresh::new(64.0), trace, &format!("auto/{name}"));
        assert_bit_identical(
            || Raidr::new(bins_all(300.0, ROWS as usize)),
            trace,
            &format!("raidr/{name}"),
        );
        assert_bit_identical(
            || Vrl::new(bins_all(300.0, ROWS as usize), vec![3; ROWS as usize]),
            trace,
            &format!("vrl/{name}"),
        );
        assert_bit_identical(
            || VrlAccess::new(bins_all(300.0, ROWS as usize), vec![3; ROWS as usize]),
            trace,
            &format!("vrl-access/{name}"),
        );
    }
}

/// Builds the multi-bank comparison pair for one policy: (plain,
/// parallel) stats over the same bursty trace.
fn multibank_pair<P, F>(make_policy: F) -> (vrl_sched::SchedStats, vrl_sched::SchedStats)
where
    P: RefreshPolicy,
    F: Fn() -> P,
{
    let config = SchedConfig::with_geometry(4, 1024).expect("geometry");
    let trace = bursty_trace(1280, 400, 50_000, 4096);
    let mut plain = Scheduler::new(config.with_parallelism(false), make_policy()).expect("config");
    let mut dsarp = Scheduler::new(config.with_parallelism(true), make_policy()).expect("config");
    let p = plain.run(trace.iter().copied(), 64.0).expect("plain run");
    let d = dsarp
        .run(trace.iter().copied(), 64.0)
        .expect("parallel run");
    (p, d)
}

#[test]
fn parallelism_hides_vrl_refreshes_from_demand() {
    let total = 4 * 1024usize;
    let (p, d) = multibank_pair(|| Vrl::new(bins_all(300.0, total), vec![3; total]));
    assert_eq!(p.sim.total_refreshes(), d.sim.total_refreshes());
    assert!(p.refresh_blocked_cycles > 0, "bursts must contend at all");
    assert!(
        d.refresh_blocked_cycles < p.refresh_blocked_cycles / 4,
        "demand-visible refresh time must collapse: {} vs {}",
        d.refresh_blocked_cycles,
        p.refresh_blocked_cycles
    );
    assert!(d.sim.postponed_refreshes > 0);
    assert!(d.pulled_in_refreshes > 0);
}

#[test]
fn parallelism_converts_vrl_access_refreshes_to_partials() {
    let total = 4 * 1024usize;
    let (p, d) = multibank_pair(|| VrlAccess::new(bins_all(300.0, total), vec![3; total]));
    assert_eq!(p.sim.total_refreshes(), d.sim.total_refreshes());
    assert!(
        d.refresh_blocked_cycles < p.refresh_blocked_cycles,
        "demand-visible refresh time must drop: {} vs {}",
        d.refresh_blocked_cycles,
        p.refresh_blocked_cycles
    );
    // Deferring a refresh past a burst gives intervening ACTs a chance
    // to reset the row's counter, turning the refresh partial: raw
    // refresh-busy time itself drops, not just the demand-visible part.
    assert!(
        d.sim.refresh_busy_cycles <= p.sim.refresh_busy_cycles,
        "deferral must not add refresh work: {} vs {}",
        d.sim.refresh_busy_cycles,
        p.sim.refresh_busy_cycles
    );
    assert!(
        d.sim.full_refreshes <= p.sim.full_refreshes,
        "deferral must not add full refreshes: {} vs {}",
        d.sim.full_refreshes,
        p.sim.full_refreshes
    );
}

#[test]
fn parallelized_refreshes_keep_every_row_charged() {
    // Weak-but-comfortable retention in the 256 ms bin: the pull-in /
    // postpone window (64 µs) is four orders of magnitude below the
    // retention margin, so a correct scheduler shows zero violations.
    let total = 4 * 64usize;
    let config = SchedConfig::with_geometry(4, 64).expect("geometry");
    let physics = LinearPhysics {
        full: 0.95,
        partial_gain: 0.4,
        threshold: 0.62,
    };
    let mut checker =
        IntegrityChecker::new(physics, TimingParams::paper_default(), vec![1500.0; total]);
    let mut sched =
        Scheduler::new(config, Vrl::new(bins_all(1500.0, total), vec![3; total])).expect("config");
    let trace = bursty_trace(64, 200, 1_000_000, total as u32);
    sched
        .run_observed(trace.into_iter(), 4096.0, &mut checker)
        .expect("run");
    assert!(
        checker.violations().is_empty(),
        "{:?}",
        checker.violations()
    );
}
