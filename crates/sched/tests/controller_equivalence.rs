//! The scheduler's three contract tests against its sibling engines.
//!
//! 1. **Degeneracy**: with one bank and parallelization disabled, the
//!    scheduler's decision loop is structurally the controller's —
//!    refresh-first, FR-FCFS pick, idle jump — and the inter-bank
//!    constraints cannot bind, so every counter must be bit-identical
//!    to [`FrFcfsController`] across policies and traffic shapes.
//! 2. **Parallelization**: with ≥ 4 banks and the elasticity window on,
//!    demand-visible refresh time collapses for VRL and VRL-Access
//!    (and VRL-Access converts deferred refreshes to partials, cutting
//!    raw refresh-busy time too), with zero integrity violations.
//! 3. **Struct-of-arrays rewrite**: the SoA hot loop must reproduce the
//!    per-bank-heap [`ReferenceScheduler`] bit-for-bit across all four
//!    policies, every traffic shape, and full-DIMM geometries
//!    (channels × ranks × banks).

use vrl_dram_sim::controller::FrFcfsController;
use vrl_dram_sim::integrity::{IntegrityChecker, LinearPhysics};
use vrl_dram_sim::policy::{AutoRefresh, Raidr, RefreshPolicy, Vrl, VrlAccess};
use vrl_dram_sim::sim::SimConfig;
use vrl_dram_sim::timing::TimingParams;
use vrl_retention::binning::BinningTable;
use vrl_retention::profile::BankProfile;
use vrl_sched::{ReferenceScheduler, SchedConfig, Scheduler};
use vrl_trace::{Op, TraceRecord};

const ROWS: u32 = 64;

fn bins_all(retention_ms: f64, rows: usize) -> BinningTable {
    BinningTable::from_profile(&BankProfile::from_rows(
        std::iter::repeat_n(retention_ms, rows),
        32,
    ))
}

/// Row-buffer-thrashing pairs: exercises FR-FCFS reordering.
fn thrash_trace() -> Vec<TraceRecord> {
    (0..4000u64)
        .map(|i| TraceRecord::new(i * 2, Op::Read, (i % 2) as u32 * 7))
        .collect()
}

/// Sparse mixed reads/writes over many rows.
fn sparse_trace() -> Vec<TraceRecord> {
    (0..2000u64)
        .map(|i| {
            let op = if i % 3 == 0 { Op::Write } else { Op::Read };
            TraceRecord::new(i * 37, op, (i % 113) as u32)
        })
        .collect()
}

/// Dense bursts separated by idle gaps.
fn bursty_trace(bursts: u64, burst_len: u64, gap: u64, rows: u32) -> Vec<TraceRecord> {
    let mut trace = Vec::with_capacity((bursts * burst_len) as usize);
    for b in 0..bursts {
        for i in 0..burst_len {
            let idx = (b * burst_len + i) % rows as u64;
            trace.push(TraceRecord::new(b * gap + i, Op::Read, idx as u32));
        }
    }
    trace
}

/// Runs the same policy (built fresh per engine — policies are stateful)
/// through both engines and demands bit-identical counters.
fn assert_bit_identical<P, F>(make_policy: F, trace: &[TraceRecord], what: &str)
where
    P: RefreshPolicy,
    F: Fn() -> P,
{
    let sched_config = SchedConfig::with_geometry(1, ROWS)
        .expect("geometry")
        .with_parallelism(false)
        .with_slack(0)
        .with_queue_depth(16);
    let mut sched = Scheduler::new(sched_config, make_policy()).expect("config");
    let s = sched
        .run(trace.iter().copied(), 64.0)
        .unwrap_or_else(|e| panic!("scheduler run ({what}): {e}"));

    let mut controller =
        FrFcfsController::new(SimConfig::with_rows(ROWS), make_policy(), 16).expect("valid depth");
    let c = controller
        .run(trace.iter().copied(), 64.0)
        .unwrap_or_else(|e| panic!("controller run ({what}): {e}"));

    assert_eq!(s.sim, c.sim, "SimStats diverged ({what})");
    assert_eq!(s.reordered, c.reordered, "reorderings diverged ({what})");
    assert_eq!(
        s.max_queue_depth, c.max_queue_depth,
        "queue depth diverged ({what})"
    );
    assert_eq!(s.pulled_in_refreshes, 0, "pull-in must be off");
}

#[test]
fn single_bank_scheduler_is_bit_identical_to_the_controller() {
    let traces: [(&str, Vec<TraceRecord>); 4] = [
        ("empty", Vec::new()),
        ("thrash", thrash_trace()),
        ("sparse", sparse_trace()),
        ("bursty", bursty_trace(40, 100, 500_000, ROWS)),
    ];
    for (name, trace) in &traces {
        assert_bit_identical(|| AutoRefresh::new(64.0), trace, &format!("auto/{name}"));
        assert_bit_identical(
            || Raidr::new(bins_all(300.0, ROWS as usize)),
            trace,
            &format!("raidr/{name}"),
        );
        assert_bit_identical(
            || Vrl::new(bins_all(300.0, ROWS as usize), vec![3; ROWS as usize]),
            trace,
            &format!("vrl/{name}"),
        );
        assert_bit_identical(
            || VrlAccess::new(bins_all(300.0, ROWS as usize), vec![3; ROWS as usize]),
            trace,
            &format!("vrl-access/{name}"),
        );
    }
}

/// Builds the multi-bank comparison pair for one policy: (plain,
/// parallel) stats over the same bursty trace.
fn multibank_pair<P, F>(make_policy: F) -> (vrl_sched::SchedStats, vrl_sched::SchedStats)
where
    P: RefreshPolicy,
    F: Fn() -> P,
{
    let config = SchedConfig::with_geometry(4, 1024).expect("geometry");
    let trace = bursty_trace(1280, 400, 50_000, 4096);
    let mut plain = Scheduler::new(config.with_parallelism(false), make_policy()).expect("config");
    let mut dsarp = Scheduler::new(config.with_parallelism(true), make_policy()).expect("config");
    let p = plain.run(trace.iter().copied(), 64.0).expect("plain run");
    let d = dsarp
        .run(trace.iter().copied(), 64.0)
        .expect("parallel run");
    (p, d)
}

#[test]
fn parallelism_hides_vrl_refreshes_from_demand() {
    let total = 4 * 1024usize;
    let (p, d) = multibank_pair(|| Vrl::new(bins_all(300.0, total), vec![3; total]));
    assert_eq!(p.sim.total_refreshes(), d.sim.total_refreshes());
    assert!(p.refresh_blocked_cycles > 0, "bursts must contend at all");
    assert!(
        d.refresh_blocked_cycles < p.refresh_blocked_cycles / 4,
        "demand-visible refresh time must collapse: {} vs {}",
        d.refresh_blocked_cycles,
        p.refresh_blocked_cycles
    );
    assert!(d.sim.postponed_refreshes > 0);
    assert!(d.pulled_in_refreshes > 0);
}

#[test]
fn parallelism_converts_vrl_access_refreshes_to_partials() {
    let total = 4 * 1024usize;
    let (p, d) = multibank_pair(|| VrlAccess::new(bins_all(300.0, total), vec![3; total]));
    assert_eq!(p.sim.total_refreshes(), d.sim.total_refreshes());
    assert!(
        d.refresh_blocked_cycles < p.refresh_blocked_cycles,
        "demand-visible refresh time must drop: {} vs {}",
        d.refresh_blocked_cycles,
        p.refresh_blocked_cycles
    );
    // Deferring a refresh past a burst gives intervening ACTs a chance
    // to reset the row's counter, turning the refresh partial: raw
    // refresh-busy time itself drops, not just the demand-visible part.
    assert!(
        d.sim.refresh_busy_cycles <= p.sim.refresh_busy_cycles,
        "deferral must not add refresh work: {} vs {}",
        d.sim.refresh_busy_cycles,
        p.sim.refresh_busy_cycles
    );
    assert!(
        d.sim.full_refreshes <= p.sim.full_refreshes,
        "deferral must not add full refreshes: {} vs {}",
        d.sim.full_refreshes,
        p.sim.full_refreshes
    );
}

/// Runs the same policy through the SoA scheduler and the reference
/// per-bank-heap engine and demands bit-identical statistics.
fn assert_matches_reference<P, F>(
    make_policy: F,
    config: SchedConfig,
    trace: &[TraceRecord],
    what: &str,
) where
    P: RefreshPolicy,
    F: Fn() -> P,
{
    let mut soa = Scheduler::new(config, make_policy()).expect("config");
    let s = soa
        .run(trace.iter().copied(), 64.0)
        .unwrap_or_else(|e| panic!("SoA run ({what}): {e}"));
    let mut reference = ReferenceScheduler::new(config, make_policy()).expect("config");
    let r = reference
        .run(trace.iter().copied(), 64.0)
        .unwrap_or_else(|e| panic!("reference run ({what}): {e}"));
    assert_eq!(s, r, "SoA diverged from the reference ({what})");
}

#[test]
fn soa_scheduler_matches_the_reference_on_one_channel() {
    // The pre-rewrite geometry: one channel, one rank, N banks — every
    // policy, every traffic shape, parallelization on and off.
    let rows = (4 * ROWS) as usize;
    let traces: [(&str, Vec<TraceRecord>); 4] = [
        ("empty", Vec::new()),
        ("thrash", thrash_trace()),
        ("sparse", sparse_trace()),
        ("bursty", bursty_trace(40, 100, 500_000, 4 * ROWS)),
    ];
    for parallel in [false, true] {
        let config = SchedConfig::with_geometry(4, ROWS)
            .expect("geometry")
            .with_parallelism(parallel);
        for (name, trace) in &traces {
            let what = |p: &str| format!("{p}/{name}/parallel={parallel}");
            assert_matches_reference(|| AutoRefresh::new(64.0), config, trace, &what("auto"));
            assert_matches_reference(
                || Raidr::new(bins_all(300.0, rows)),
                config,
                trace,
                &what("raidr"),
            );
            assert_matches_reference(
                || Vrl::new(bins_all(300.0, rows), vec![3; rows]),
                config,
                trace,
                &what("vrl"),
            );
            assert_matches_reference(
                || VrlAccess::new(bins_all(300.0, rows), vec![3; rows]),
                config,
                trace,
                &what("vrl-access"),
            );
        }
    }
}

#[test]
fn soa_scheduler_matches_the_reference_across_dimm_geometries() {
    for (channels, ranks, banks) in [(2, 1, 4), (1, 2, 4), (2, 2, 4), (4, 1, 2)] {
        let config = SchedConfig::with_dimm_geometry(channels, ranks, banks, ROWS)
            .expect("geometry")
            .with_parallelism(true);
        let rows = config.total_rows() as usize;
        let trace = bursty_trace(40, 150, 300_000, config.banks() * ROWS);
        let what = |p: &str| format!("{p}/{channels}ch x {ranks}rk x {banks}bk");
        assert_matches_reference(|| AutoRefresh::new(64.0), config, &trace, &what("auto"));
        assert_matches_reference(
            || VrlAccess::new(bins_all(300.0, rows), vec![3; rows]),
            config,
            &trace,
            &what("vrl-access"),
        );
    }
}

#[test]
fn rank_refresh_spacing_binds_only_with_trfc() {
    // With tRFC wide enough to matter, same-rank refreshes spread out
    // (more total busy-spanned time); the SoA and reference engines
    // must still agree bit-for-bit.
    let config = SchedConfig::with_dimm_geometry(1, 2, 4, ROWS)
        .expect("geometry")
        .with_trfc(64);
    let trace = bursty_trace(20, 100, 400_000, config.banks() * ROWS);
    assert_matches_reference(|| AutoRefresh::new(64.0), config, &trace, "auto/trfc=64");

    let rows = config.total_rows() as usize;
    assert_matches_reference(
        || Vrl::new(bins_all(300.0, rows), vec![3; rows]),
        config,
        &trace,
        "vrl/trfc=64",
    );
}

#[test]
fn parallelized_refreshes_keep_every_row_charged() {
    // Weak-but-comfortable retention in the 256 ms bin: the pull-in /
    // postpone window (64 µs) is four orders of magnitude below the
    // retention margin, so a correct scheduler shows zero violations.
    let total = 4 * 64usize;
    let config = SchedConfig::with_geometry(4, 64).expect("geometry");
    let physics = LinearPhysics {
        full: 0.95,
        partial_gain: 0.4,
        threshold: 0.62,
    };
    let mut checker =
        IntegrityChecker::new(physics, TimingParams::paper_default(), vec![1500.0; total]);
    let mut sched =
        Scheduler::new(config, Vrl::new(bins_all(1500.0, total), vec![3; total])).expect("config");
    let trace = bursty_trace(64, 200, 1_000_000, total as u32);
    sched
        .run_observed(trace.into_iter(), 4096.0, &mut checker)
        .expect("run");
    assert!(
        checker.violations().is_empty(),
        "{:?}",
        checker.violations()
    );
}
