//! # vrl-snap — crash-consistent snapshot codec
//!
//! A dependency-free binary serialization layer for checkpoint/resume:
//! the vendored `serde` subset is serialize-only (JSON out, no parsing
//! back), so engine snapshots use this purpose-built codec instead.
//!
//! * [`Encoder`]/[`Decoder`] — little-endian primitive codec with typed
//!   end-of-input errors,
//! * [`Snapshot`] — the save/load trait engine types implement,
//! * [`seal`]/[`open`] — the versioned envelope: magic, format version,
//!   payload length, payload, and an FNV-1a 64 checksum over the whole
//!   prefix, so truncation and corruption are both detected,
//! * [`write_atomic`] — temp-file + `sync_all` + atomic rename, so a
//!   crash mid-write never leaves a torn checkpoint behind (the previous
//!   complete checkpoint survives).
//!
//! Invalidation rules: a snapshot is only readable by the exact
//! [`FORMAT_VERSION`] that wrote it (no cross-version migration), and
//! embedding layers additionally bind snapshots to their own engine tag
//! and configuration (see DESIGN.md §12).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Magic bytes opening every snapshot envelope.
pub const MAGIC: [u8; 8] = *b"VRLSNAP\0";

/// Current snapshot format version. Bump on any layout change; older
/// snapshots are rejected, never migrated. Version 2: full-DIMM
/// scheduler state (channel lane cursors, per-rank bus state, DIMM
/// geometry in the scheduler shape).
pub const FORMAT_VERSION: u32 = 2;

/// An error reading or writing a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapError {
    /// The input ended before the requested field.
    UnexpectedEof {
        /// Byte offset at which more input was needed.
        offset: usize,
    },
    /// The envelope does not start with [`MAGIC`].
    BadMagic,
    /// The envelope was written by a different format version.
    VersionMismatch {
        /// Version found in the envelope.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// The checksum does not match the envelope contents.
    ChecksumMismatch {
        /// Checksum stored in the envelope.
        stored: u64,
        /// Checksum computed over the received bytes.
        computed: u64,
    },
    /// Bytes remained after the payload (or the declared payload length
    /// disagrees with the envelope size).
    TrailingBytes {
        /// How many unexpected bytes remained.
        extra: usize,
    },
    /// A decoded field failed validation.
    Malformed {
        /// What was wrong.
        what: String,
    },
    /// An underlying filesystem operation failed.
    Io {
        /// The rendered I/O error.
        message: String,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::UnexpectedEof { offset } => {
                write!(f, "snapshot truncated at byte {offset}")
            }
            SnapError::BadMagic => write!(f, "not a vrl snapshot (bad magic)"),
            SnapError::VersionMismatch { found, expected } => {
                write!(f, "snapshot format v{found}, this build reads v{expected}")
            }
            SnapError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "snapshot checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
                )
            }
            SnapError::TrailingBytes { extra } => {
                write!(f, "snapshot has {extra} trailing bytes")
            }
            SnapError::Malformed { what } => write!(f, "malformed snapshot: {what}"),
            SnapError::Io { message } => write!(f, "snapshot io error: {message}"),
        }
    }
}

impl std::error::Error for SnapError {}

impl From<std::io::Error> for SnapError {
    fn from(e: std::io::Error) -> Self {
        SnapError::Io {
            message: e.to_string(),
        }
    }
}

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Appends primitives to a snapshot payload (little-endian throughout).
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// The bytes encoded so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` (as `u64`).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` by bit pattern (exact round trip, NaN included).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Reads primitives back out of a snapshot payload.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::UnexpectedEof { offset: self.pos });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn take_u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a `u64`.
    pub fn take_u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a `usize` (encoded as `u64`), rejecting values that do not
    /// fit the platform's pointer width.
    pub fn take_usize(&mut self) -> Result<usize, SnapError> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| SnapError::Malformed {
            what: format!("usize value {v} exceeds platform width"),
        })
    }

    /// Reads an `f64` by bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a bool, rejecting bytes other than 0/1.
    pub fn take_bool(&mut self) -> Result<bool, SnapError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::Malformed {
                what: format!("bool byte {b}"),
            }),
        }
    }

    /// Reads a length-prefixed byte slice.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let len = self.take_usize()?;
        if len > self.remaining() {
            return Err(SnapError::UnexpectedEof { offset: self.pos });
        }
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, SnapError> {
        let b = self.take_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| SnapError::Malformed {
            what: "non-UTF-8 string".into(),
        })
    }

    /// Fails unless every byte has been consumed.
    pub fn finish(self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(SnapError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

/// A type that can write itself into an [`Encoder`] and read itself back.
///
/// Loading must accept exactly what saving wrote; anything else is a
/// [`SnapError`]. Implementations live next to the types they snapshot so
/// private fields stay private.
pub trait Snapshot: Sized {
    /// Appends this value to `enc`.
    fn save(&self, enc: &mut Encoder);
    /// Reads one value from `dec`.
    fn load(dec: &mut Decoder<'_>) -> Result<Self, SnapError>;
}

impl Snapshot for u8 {
    fn save(&self, enc: &mut Encoder) {
        enc.put_u8(*self);
    }
    fn load(dec: &mut Decoder<'_>) -> Result<Self, SnapError> {
        dec.take_u8()
    }
}

impl Snapshot for u32 {
    fn save(&self, enc: &mut Encoder) {
        enc.put_u32(*self);
    }
    fn load(dec: &mut Decoder<'_>) -> Result<Self, SnapError> {
        dec.take_u32()
    }
}

impl Snapshot for u64 {
    fn save(&self, enc: &mut Encoder) {
        enc.put_u64(*self);
    }
    fn load(dec: &mut Decoder<'_>) -> Result<Self, SnapError> {
        dec.take_u64()
    }
}

impl Snapshot for usize {
    fn save(&self, enc: &mut Encoder) {
        enc.put_usize(*self);
    }
    fn load(dec: &mut Decoder<'_>) -> Result<Self, SnapError> {
        dec.take_usize()
    }
}

impl Snapshot for f64 {
    fn save(&self, enc: &mut Encoder) {
        enc.put_f64(*self);
    }
    fn load(dec: &mut Decoder<'_>) -> Result<Self, SnapError> {
        dec.take_f64()
    }
}

impl Snapshot for bool {
    fn save(&self, enc: &mut Encoder) {
        enc.put_bool(*self);
    }
    fn load(dec: &mut Decoder<'_>) -> Result<Self, SnapError> {
        dec.take_bool()
    }
}

impl Snapshot for String {
    fn save(&self, enc: &mut Encoder) {
        enc.put_str(self);
    }
    fn load(dec: &mut Decoder<'_>) -> Result<Self, SnapError> {
        dec.take_str()
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn save(&self, enc: &mut Encoder) {
        match self {
            None => enc.put_u8(0),
            Some(v) => {
                enc.put_u8(1);
                v.save(enc);
            }
        }
    }
    fn load(dec: &mut Decoder<'_>) -> Result<Self, SnapError> {
        match dec.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(dec)?)),
            b => Err(SnapError::Malformed {
                what: format!("Option tag {b}"),
            }),
        }
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn save(&self, enc: &mut Encoder) {
        enc.put_usize(self.len());
        for v in self {
            v.save(enc);
        }
    }
    fn load(dec: &mut Decoder<'_>) -> Result<Self, SnapError> {
        let len = dec.take_usize()?;
        // Guard allocation against corrupt lengths: each element needs at
        // least one byte of input.
        if len > dec.remaining() {
            return Err(SnapError::UnexpectedEof { offset: 0 });
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::load(dec)?);
        }
        Ok(out)
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn save(&self, enc: &mut Encoder) {
        self.0.save(enc);
        self.1.save(enc);
    }
    fn load(dec: &mut Decoder<'_>) -> Result<Self, SnapError> {
        Ok((A::load(dec)?, B::load(dec)?))
    }
}

impl<A: Snapshot, B: Snapshot, C: Snapshot> Snapshot for (A, B, C) {
    fn save(&self, enc: &mut Encoder) {
        self.0.save(enc);
        self.1.save(enc);
        self.2.save(enc);
    }
    fn load(dec: &mut Decoder<'_>) -> Result<Self, SnapError> {
        Ok((A::load(dec)?, B::load(dec)?, C::load(dec)?))
    }
}

/// Wraps `payload` in the versioned, checksummed envelope.
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(MAGIC.len() + 4 + 8 + payload.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Verifies an envelope and returns its payload.
///
/// # Errors
///
/// [`SnapError::BadMagic`], [`SnapError::VersionMismatch`],
/// [`SnapError::UnexpectedEof`] (truncated envelope),
/// [`SnapError::TrailingBytes`], or [`SnapError::ChecksumMismatch`].
pub fn open(bytes: &[u8]) -> Result<&[u8], SnapError> {
    let header = MAGIC.len() + 4 + 8;
    if bytes.len() < MAGIC.len() {
        return Err(SnapError::UnexpectedEof {
            offset: bytes.len(),
        });
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(SnapError::BadMagic);
    }
    if bytes.len() < header {
        return Err(SnapError::UnexpectedEof {
            offset: bytes.len(),
        });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(SnapError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    let want = header + len + 8;
    if bytes.len() < want {
        return Err(SnapError::UnexpectedEof {
            offset: bytes.len(),
        });
    }
    if bytes.len() > want {
        return Err(SnapError::TrailingBytes {
            extra: bytes.len() - want,
        });
    }
    let stored = u64::from_le_bytes(bytes[want - 8..].try_into().expect("8 bytes"));
    let computed = fnv1a64(&bytes[..want - 8]);
    if stored != computed {
        return Err(SnapError::ChecksumMismatch { stored, computed });
    }
    Ok(&bytes[header..header + len])
}

/// [`seal`] with a 4-byte subsystem tag prepended to the payload,
/// binding the envelope to one embedding format. Checkpoints, job
/// manifests, and any future sealed artifact share the outer envelope
/// (magic, version, checksum); the tag is what stops a valid file of
/// one kind from being parsed as another — `vrl-serve` seals its job
/// manifests under `*b"SRVQ"`, for example.
pub fn seal_tagged(tag: [u8; 4], payload: &[u8]) -> Vec<u8> {
    let mut tagged = Vec::with_capacity(4 + payload.len());
    tagged.extend_from_slice(&tag);
    tagged.extend_from_slice(payload);
    seal(&tagged)
}

/// Verifies an envelope sealed by [`seal_tagged`] and returns the
/// payload behind the tag.
///
/// # Errors
///
/// Any [`open`] error, or [`SnapError::Malformed`] when the envelope is
/// valid but carries a different subsystem tag.
pub fn open_tagged(tag: [u8; 4], bytes: &[u8]) -> Result<&[u8], SnapError> {
    let payload = open(bytes)?;
    if payload.len() < 4 {
        return Err(SnapError::UnexpectedEof {
            offset: payload.len(),
        });
    }
    if payload[..4] != tag {
        return Err(SnapError::Malformed {
            what: format!(
                "subsystem tag mismatch: found {:?}, expected {:?}",
                &payload[..4],
                tag
            ),
        });
    }
    Ok(&payload[4..])
}

/// Writes `payload` (sealed) to `path` crash-consistently: the bytes go
/// to a sibling temp file, are fsynced, and are renamed over `path` in
/// one atomic step. A crash at any point leaves either the old complete
/// file or the new complete file, never a torn mix.
///
/// # Errors
///
/// [`SnapError::Io`] on any filesystem failure.
pub fn write_atomic(path: &Path, payload: &[u8]) -> Result<(), SnapError> {
    write_atomic_raw(path, &seal(payload))
}

/// [`write_atomic`] for a subsystem-tagged envelope: the payload is
/// sealed under `tag` (see [`seal_tagged`]) and written with the same
/// temp-file + fsync + rename discipline. The on-disk artifact tier of
/// `vrl-serve` uses this so a crash mid-store leaves either the old
/// complete artifact or the new one, never torn bytes.
///
/// # Errors
///
/// [`SnapError::Io`] on any filesystem failure.
pub fn write_atomic_tagged(path: &Path, tag: [u8; 4], payload: &[u8]) -> Result<(), SnapError> {
    write_atomic_raw(path, &seal_tagged(tag, payload))
}

/// The temp-file + fsync + atomic-rename discipline on pre-sealed
/// bytes.
fn write_atomic_raw(path: &Path, sealed: &[u8]) -> Result<(), SnapError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(sealed)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Moves a damaged file out of the way by renaming it to
/// `<path>.quar`, returning the quarantine path. The original name is
/// freed so a rebuilt artifact can take its place, while the corrupt
/// bytes are preserved for post-mortem instead of deleted.
///
/// # Errors
///
/// [`SnapError::Io`] if the rename fails (e.g. the file vanished).
pub fn quarantine(path: &Path) -> Result<std::path::PathBuf, SnapError> {
    let mut quar = path.as_os_str().to_owned();
    quar.push(".quar");
    let quar = std::path::PathBuf::from(quar);
    fs::rename(path, &quar)?;
    Ok(quar)
}

/// Reads a sealed snapshot from `path` and returns its payload.
///
/// # Errors
///
/// [`SnapError::Io`] on filesystem failure, or any [`open`] error on a
/// damaged envelope.
pub fn read_file(path: &Path) -> Result<Vec<u8>, SnapError> {
    let bytes = fs::read(path)?;
    let payload = open(&bytes)?;
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagged_atomic_writes_round_trip_and_quarantine_frees_the_name() {
        let dir = std::env::temp_dir().join("vrl-snap-quarantine-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.art");
        write_atomic_tagged(&path, *b"SRVA", b"payload bytes").unwrap();
        let bytes = fs::read(&path).unwrap();
        assert_eq!(open_tagged(*b"SRVA", &bytes).unwrap(), b"payload bytes");

        let quar = quarantine(&path).unwrap();
        assert!(!path.exists(), "quarantine must free the original name");
        assert!(quar.exists());
        assert_eq!(quar.extension().unwrap(), "quar");
        // The damaged bytes are preserved, not deleted.
        assert_eq!(fs::read(&quar).unwrap(), bytes);
        // Quarantining a missing file is a typed error, not a panic.
        assert!(matches!(quarantine(&path), Err(SnapError::Io { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tagged_envelopes_round_trip_and_reject_other_tags() {
        let sealed = seal_tagged(*b"SRVQ", b"manifest bytes");
        assert_eq!(open_tagged(*b"SRVQ", &sealed).unwrap(), b"manifest bytes");
        // A valid envelope of another subsystem is a typed error.
        assert!(matches!(
            open_tagged(*b"CKPT", &sealed),
            Err(SnapError::Malformed { .. })
        ));
        // An untagged envelope is too short to carry a tag or carries
        // whatever its first four payload bytes happen to be — never a
        // silent success for an empty payload.
        assert!(open_tagged(*b"SRVQ", &seal(b"")).is_err());
    }

    #[test]
    fn primitive_round_trip() {
        let mut enc = Encoder::new();
        enc.put_u8(7);
        enc.put_u32(1234);
        enc.put_u64(u64::MAX);
        enc.put_f64(-0.5);
        enc.put_bool(true);
        enc.put_str("héllo");
        enc.put_bytes(&[1, 2, 3]);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.take_u8().unwrap(), 7);
        assert_eq!(dec.take_u32().unwrap(), 1234);
        assert_eq!(dec.take_u64().unwrap(), u64::MAX);
        assert_eq!(dec.take_f64().unwrap(), -0.5);
        assert!(dec.take_bool().unwrap());
        assert_eq!(dec.take_str().unwrap(), "héllo");
        assert_eq!(dec.take_bytes().unwrap(), &[1, 2, 3]);
        dec.finish().unwrap();
    }

    #[test]
    fn snapshot_trait_round_trip() {
        let v: (u64, Option<u32>, Vec<(u64, u32, u64)>) = (9, Some(3), vec![(1, 2, 3), (4, 5, 6)]);
        let mut enc = Encoder::new();
        v.save(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = <(u64, Option<u32>, Vec<(u64, u32, u64)>)>::load(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn truncated_input_is_typed_eof() {
        let mut enc = Encoder::new();
        enc.put_u64(1);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes[..4]);
        assert!(matches!(
            dec.take_u64(),
            Err(SnapError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn corrupt_vec_length_is_rejected_without_allocating() {
        let mut enc = Encoder::new();
        enc.put_u64(u64::MAX); // absurd element count
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(Vec::<u64>::load(&mut dec).is_err());
    }

    #[test]
    fn envelope_round_trip() {
        let payload = b"engine state".to_vec();
        let sealed = seal(&payload);
        assert_eq!(open(&sealed).unwrap(), payload.as_slice());
    }

    #[test]
    fn envelope_detects_bad_magic_version_truncation_and_corruption() {
        let sealed = seal(b"x");
        let mut bad = sealed.clone();
        bad[0] = b'X';
        assert_eq!(open(&bad), Err(SnapError::BadMagic));

        let mut bad = sealed.clone();
        bad[8] = 99;
        assert!(matches!(
            open(&bad),
            Err(SnapError::VersionMismatch { found: 99, .. })
        ));

        for cut in [3, 10, sealed.len() - 1] {
            assert!(
                matches!(open(&sealed[..cut]), Err(SnapError::UnexpectedEof { .. })),
                "cut at {cut}"
            );
        }

        let mut bad = sealed.clone();
        let last = bad.len() - 9; // inside the payload
        bad[last] ^= 0xFF;
        assert!(matches!(
            open(&bad),
            Err(SnapError::ChecksumMismatch { .. })
        ));

        let mut bad = sealed;
        bad.push(0);
        assert!(matches!(open(&bad), Err(SnapError::TrailingBytes { .. })));
    }

    #[test]
    fn atomic_write_and_read_back() {
        let dir = std::env::temp_dir();
        let path = dir.join("vrl_snap_atomic_test.snap");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(read_file(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(read_file(&path).unwrap(), b"second");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_file(Path::new("/definitely/not/here.snap")).unwrap_err();
        assert!(matches!(err, SnapError::Io { .. }));
    }
}
