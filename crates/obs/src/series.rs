//! A bounded time series of timestamped metric snapshots.
//!
//! Where [`EventRing`](crate::ring::EventRing) keeps the *oldest*
//! prefix of an event stream (its merge rules need gap-free `seq`), a
//! [`SnapshotRing`] serves the opposite question — "what happened
//! recently?" — so it keeps the **newest** window: pushing past
//! capacity evicts the oldest entry and counts it. Consecutive entries
//! yield [`SnapshotDelta`]s (counters and histogram buckets subtract,
//! gauges report the newer value) that replay as NDJSON for the serve
//! `history` request.

use std::collections::VecDeque;

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};

/// One ring entry: a snapshot and the capture timestamp, in
/// milliseconds on whatever clock the producer uses (the serve daemon
/// uses milliseconds since process start).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedSnapshot {
    /// Capture time in milliseconds (producer-defined epoch).
    pub at_ms: u64,
    /// The captured metrics.
    pub snapshot: MetricsSnapshot,
}

/// The change between two consecutive [`TimedSnapshot`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotDelta {
    /// Older entry's timestamp.
    pub from_ms: u64,
    /// Newer entry's timestamp.
    pub to_ms: u64,
    /// Counters: newer − older (saturating, so a counter reset reads as
    /// zero progress rather than wrapping). Gauges: the newer value.
    /// Histograms: bucket-wise newer − older.
    pub delta: MetricsSnapshot,
}

impl SnapshotDelta {
    /// One NDJSON line: `{"schema_version":2,"from_ms":...,"to_ms":...,
    /// "delta":<flat metrics JSON>}`. Deterministic for fixed inputs —
    /// the embedded metrics JSON orders names via `BTreeMap`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema_version\":2,\"from_ms\":{},\"to_ms\":{},\"delta\":{}}}",
            self.from_ms,
            self.to_ms,
            self.delta.to_json()
        )
    }
}

/// Computes the delta between two snapshots (see [`SnapshotDelta`] for
/// the per-kind rules). Metrics present only in `newer` are kept whole;
/// metrics that vanished are dropped — a delta describes what the newer
/// snapshot can still account for.
pub fn snapshot_delta(older: &MetricsSnapshot, newer: &MetricsSnapshot) -> MetricsSnapshot {
    let mut out = MetricsSnapshot::default();
    for (name, v) in &newer.counters {
        let before = older.counters.get(name).copied().unwrap_or(0);
        out.counters.insert(name.clone(), v.saturating_sub(before));
    }
    for (name, v) in &newer.gauges {
        out.gauges.insert(name.clone(), *v);
    }
    for (name, h) in &newer.histograms {
        let counts = match older.histograms.get(name) {
            Some(prev) if prev.bounds == h.bounds => h
                .counts
                .iter()
                .zip(&prev.counts)
                .map(|(n, p)| n.saturating_sub(*p))
                .collect(),
            // Unknown before (or re-registered with new bounds): the
            // whole newer histogram is the delta.
            _ => h.counts.clone(),
        };
        out.histograms.insert(
            name.clone(),
            HistogramSnapshot {
                bounds: h.bounds.clone(),
                counts,
            },
        );
    }
    out
}

/// Bounded drop-oldest buffer of [`TimedSnapshot`]s.
#[derive(Debug, Clone)]
pub struct SnapshotRing {
    entries: VecDeque<TimedSnapshot>,
    capacity: usize,
    evicted: u64,
}

impl SnapshotRing {
    /// A ring holding at most `capacity` snapshots (minimum 2, so at
    /// least one delta is always derivable once two pushes land).
    pub fn with_capacity(capacity: usize) -> Self {
        SnapshotRing {
            entries: VecDeque::new(),
            capacity: capacity.max(2),
            evicted: 0,
        }
    }

    /// Appends a snapshot, evicting the oldest entry when full.
    /// Timestamps must be non-decreasing; a regressing clock is clamped
    /// to the previous entry's timestamp so deltas never run backwards.
    pub fn push(&mut self, at_ms: u64, snapshot: MetricsSnapshot) {
        let at_ms = match self.entries.back() {
            Some(last) => at_ms.max(last.at_ms),
            None => at_ms,
        };
        if self.entries.len() >= self.capacity {
            self.entries.pop_front();
            self.evicted += 1;
        }
        self.entries.push_back(TimedSnapshot { at_ms, snapshot });
    }

    /// Entries currently retained, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TimedSnapshot> {
        self.entries.iter()
    }

    /// The newest entry, if any.
    pub fn latest(&self) -> Option<&TimedSnapshot> {
        self.entries.back()
    }

    /// Retained entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries evicted so far to stay under capacity.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Deltas between consecutive retained entries, oldest first:
    /// `len() - 1` of them (empty when fewer than two entries).
    pub fn deltas(&self) -> Vec<SnapshotDelta> {
        self.entries
            .iter()
            .zip(self.entries.iter().skip(1))
            .map(|(older, newer)| SnapshotDelta {
                from_ms: older.at_ms,
                to_ms: newer.at_ms,
                delta: snapshot_delta(&older.snapshot, &newer.snapshot),
            })
            .collect()
    }

    /// The most recent `limit` deltas (all of them when `limit` is
    /// `None` or exceeds the retained window).
    pub fn recent_deltas(&self, limit: Option<usize>) -> Vec<SnapshotDelta> {
        let mut deltas = self.deltas();
        if let Some(limit) = limit {
            let skip = deltas.len().saturating_sub(limit);
            deltas.drain(..skip);
        }
        deltas
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn snap(completed: u64, depth: u64, hist: &[u64]) -> MetricsSnapshot {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("jobs.completed");
        reg.add(c, completed);
        let g = reg.gauge("queue.depth");
        reg.set(g, depth);
        let h = reg.histogram("lat", &[10, 100]).unwrap();
        for &v in hist {
            reg.observe(h, v);
        }
        reg.snapshot()
    }

    #[test]
    fn deltas_subtract_counters_and_buckets_and_carry_gauges() {
        let mut ring = SnapshotRing::with_capacity(8);
        ring.push(100, snap(2, 5, &[3]));
        ring.push(250, snap(7, 1, &[3, 50, 5000]));
        let deltas = ring.deltas();
        assert_eq!(deltas.len(), 1);
        let d = &deltas[0];
        assert_eq!((d.from_ms, d.to_ms), (100, 250));
        assert_eq!(d.delta.counter("jobs.completed"), 5);
        assert_eq!(d.delta.gauge("queue.depth"), 1);
        assert_eq!(d.delta.histograms["lat"].counts, vec![0, 1, 1]);
        let json = d.to_json();
        assert!(
            json.starts_with("{\"schema_version\":2,\"from_ms\":100"),
            "{json}"
        );
    }

    #[test]
    fn ring_drops_oldest_and_counts_evictions() {
        let mut ring = SnapshotRing::with_capacity(2);
        for i in 0..5u64 {
            ring.push(i * 10, snap(i, 0, &[]));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.evicted(), 3);
        assert_eq!(ring.latest().unwrap().at_ms, 40);
        // Window keeps the newest entries.
        let at: Vec<u64> = ring.entries().map(|e| e.at_ms).collect();
        assert_eq!(at, vec![30, 40]);
        assert_eq!(ring.recent_deltas(Some(1)).len(), 1);
    }

    #[test]
    fn regressing_clocks_are_clamped() {
        let mut ring = SnapshotRing::with_capacity(4);
        ring.push(100, snap(1, 0, &[]));
        ring.push(50, snap(2, 0, &[]));
        let deltas = ring.deltas();
        assert_eq!((deltas[0].from_ms, deltas[0].to_ms), (100, 100));
    }

    #[test]
    fn counter_resets_read_as_zero_progress() {
        let d = snapshot_delta(&snap(9, 0, &[]), &snap(4, 0, &[]));
        assert_eq!(d.counter("jobs.completed"), 0);
    }
}
