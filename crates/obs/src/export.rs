//! Exporters: Chrome `trace_event` JSON (loadable in Perfetto /
//! `chrome://tracing`) and stream-level metadata.
//!
//! Every recorded event becomes an instant event (`"ph":"i"`) with
//! `ts` = simulation cycle, `pid` = 0, and `tid` = bank, so each bank
//! renders as its own track. Bank tracks are labelled via `"ph":"M"`
//! `thread_name` metadata records.

use crate::event::{Event, EventKind};
use crate::recorder::NO_ROW;

/// Render events as a complete Chrome `trace_event` JSON document.
///
/// `label`/`policy` are attached to every event's `args` so filtering in
/// the viewer works; `dropped` is recorded in the document-level
/// `otherData` block.
pub fn chrome_trace_json(events: &[Event], label: &str, policy: &str, dropped: u64) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut banks: Vec<u32> = events.iter().map(|e| e.bank).collect();
    banks.sort_unstable();
    banks.dedup();
    for bank in &banks {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{bank},\
             \"args\":{{\"name\":\"bank {bank}\"}}}}"
        ));
    }
    for event in events {
        if !first {
            out.push(',');
        }
        first = false;
        push_event(&mut out, event, policy);
    }
    out.push_str("],\"displayTimeUnit\":\"ns\",\"otherData\":{\"label\":");
    serde::write_json_string(label, &mut out);
    out.push_str(",\"policy\":");
    serde::write_json_string(policy, &mut out);
    out.push_str(&format!(
        ",\"dropped\":{dropped},\"events\":{}}}}}",
        events.len()
    ));
    out
}

fn push_event(out: &mut String, event: &Event, policy: &str) {
    out.push_str("{\"name\":");
    serde::write_json_string(event.kind.name(), out);
    out.push_str(&format!(
        ",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{},\"cat\":\"vrl\",\"args\":{{",
        event.cycle, event.bank
    ));
    if event.row != NO_ROW {
        out.push_str(&format!("\"row\":{},", event.row));
    }
    out.push_str(&format!("\"seq\":{},\"policy\":", event.seq));
    serde::write_json_string(policy, out);
    match event.kind {
        EventKind::GuardDegrade(step) => {
            out.push_str(&format!(",\"step\":\"{step:?}\""));
        }
        EventKind::FaultInjected { dropped } => {
            out.push_str(&format!(",\"dropped\":{dropped}"));
        }
        EventKind::QueueStall { depth } => {
            out.push_str(&format!(",\"depth\":{depth}"));
        }
        EventKind::ExecRetry { attempt, backoff } => {
            out.push_str(&format!(",\"attempt\":{attempt},\"backoff\":{backoff}"));
        }
        EventKind::ExecQuarantine { attempts, panicked } => {
            out.push_str(&format!(",\"attempts\":{attempts},\"panicked\":{panicked}"));
        }
        EventKind::ExecDegraded { failures } => {
            out.push_str(&format!(",\"failures\":{failures}"));
        }
        EventKind::JobQueued { depth } => {
            out.push_str(&format!(",\"depth\":{depth}"));
        }
        EventKind::JobCompleted { cached } => {
            out.push_str(&format!(",\"cached\":{cached}"));
        }
        EventKind::JobShed { reason } => {
            out.push_str(&format!(",\"reason\":\"{}\"", reason.name()));
        }
        _ => {}
    }
    out.push_str("}}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DegradeStep;

    fn ev(seq: u64, cycle: u64, bank: u32, row: u32, kind: EventKind) -> Event {
        Event {
            seq,
            cycle,
            bank,
            row,
            kind,
        }
    }

    #[test]
    fn export_emits_metadata_and_instants() {
        let events = vec![
            ev(0, 5, 0, 1, EventKind::Activate),
            ev(
                1,
                9,
                1,
                70,
                EventKind::GuardDegrade(DegradeStep::MprsfHalved(1)),
            ),
            ev(2, 11, 0, NO_ROW, EventKind::QueueStall { depth: 4 }),
        ];
        let json = chrome_trace_json(&events, "unit", "vrl", 2);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"name\":\"Activate\""));
        assert!(json.contains("\"step\":\"MprsfHalved(1)\""));
        assert!(json.contains("\"depth\":4"));
        assert!(json.contains("\"dropped\":2"));
        // Row-less events omit the row arg entirely.
        assert!(!json.contains(&format!("\"row\":{NO_ROW}")));
    }
}
