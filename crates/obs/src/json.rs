//! A minimal recursive-descent JSON parser.
//!
//! The vendored `serde_json` subset can only *serialise*, so validating
//! exported documents (CLI `--validate`, CI schema checks) needs a
//! reader. This parser covers the whole JSON grammar and is hardened
//! against hostile input: malformed or truncated documents surface as
//! typed [`ParseError`]s with byte offsets, and nesting is capped at
//! [`MAX_DEPTH`] so a `[[[[…` bomb cannot overflow the parse stack (the
//! property tests in this module feed it random garbage and assert it
//! never panics).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; fine for validation purposes).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (keys sorted — duplicate keys keep the last value).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Deepest container nesting [`parse`] accepts. The exporters emit
/// documents a handful of levels deep, so 128 is generous headroom while
/// keeping the recursive descent comfortably inside the thread stack.
pub const MAX_DEPTH: usize = 128;

/// Parse a complete JSON document (rejects trailing garbage).
pub fn parse(input: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error(&format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.enter()?;
        let value = self.object_body();
        self.depth -= 1;
        value
    }

    fn object_body(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.enter()?;
        let value = self.array_body();
        self.depth -= 1;
        value
    }

    fn array_body(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let code = self.unicode_escape()?;
                            out.push(code);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run up to the next quote or
                    // escape in one slice: `"` and `\` are ASCII, so
                    // they can never split a multi-byte sequence, and
                    // the input is a &str, so the run is valid UTF-8.
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        // Called with `pos` on the `u`; consumes `uXXXX` (and a low
        // surrogate pair if present).
        self.pos += 1;
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(code)
                        .ok_or_else(|| self.error("invalid surrogate pair"));
                }
            }
            return Err(self.error("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.error("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.error("expected 4 hex digits")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny","d":true,"e":null}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&JsonValue::Null));
    }

    #[test]
    fn parses_unicode_escapes() {
        let v = parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn large_documents_parse_in_linear_time() {
        // Regression: the string scanner once re-validated the entire
        // remaining input per character, making multi-megabyte traces
        // quadratic (and CLI --validate effectively hang).
        let mut doc = String::from("[");
        for i in 0..20_000 {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(r#"{"name":"Activate","args":{"row":12345,"policy":"vrl-access"}}"#);
        }
        doc.push(']');
        let v = parse(&doc).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 20_000);
    }

    #[test]
    fn round_trips_the_escaper() {
        let mut doc = String::new();
        serde::write_json_string("quote \" slash \\ newline \n tab \t", &mut doc);
        let v = parse(&doc).unwrap();
        assert_eq!(v.as_str(), Some("quote \" slash \\ newline \n tab \t"));
    }

    #[test]
    fn depth_limit_is_a_typed_error_not_a_stack_overflow() {
        // Exactly at the limit: fine.
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
        // One past the limit: typed error mentioning the cap.
        let deep = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "got: {err}");
        // A million-deep bomb must not blow the stack either.
        let bomb = "[".repeat(1_000_000);
        assert!(parse(&bomb).is_err());
        // Mixed nesting counts both container kinds.
        let mixed: String = (0..MAX_DEPTH + 1)
            .map(|i| if i % 2 == 0 { "[" } else { "{\"k\":" })
            .collect();
        assert!(parse(&mixed).unwrap_err().message.contains("nesting"));
    }

    mod properties {
        use super::super::*;
        use proptest::prelude::*;

        /// Render a random byte vector as mostly-JSON-ish text: map each
        /// byte into a small alphabet heavy on structural characters so
        /// the parser's recursive paths actually get exercised instead of
        /// failing at byte 0.
        fn jsonish(bytes: &[u8]) -> String {
            const ALPHABET: &[u8] = b"{}[]\",:\\0123456789.eE+- \tutrfalsn\n\"u00";
            bytes
                .iter()
                .map(|&b| ALPHABET[b as usize % ALPHABET.len()] as char)
                .collect()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(512))]

            #[test]
            fn malformed_input_never_panics(bytes in prop::collection::vec(0u8..=255, 0..200)) {
                // Raw (possibly invalid UTF-8 → lossy) garbage.
                let raw = String::from_utf8_lossy(&bytes).into_owned();
                let _ = parse(&raw);
                // Structural-character-heavy garbage.
                let _ = parse(&jsonish(&bytes));
            }

            #[test]
            fn truncation_never_panics(cut in 0usize..120, n in 1usize..6) {
                // Build a valid nested document, truncate anywhere: every
                // prefix must yield Ok or a typed error, never a panic.
                let mut doc = String::new();
                for _ in 0..n {
                    doc.push_str("{\"events\":[{\"name\":\"Activate\",\"args\":{\"row\":1}},");
                }
                doc.push_str("null");
                let cut = cut.min(doc.len());
                let mut prefix = &doc[..cut];
                // Don't split a multi-byte char (all ASCII here, but keep
                // the guard in case the corpus changes).
                while !doc.is_char_boundary(prefix.len()) {
                    prefix = &doc[..prefix.len() - 1];
                }
                prop_assert!(parse(prefix).is_err() || prefix == "null");
            }

            #[test]
            fn deep_nesting_is_rejected_with_a_typed_error(
                depth in (MAX_DEPTH + 1)..(MAX_DEPTH + 300),
                kind in 0u8..2,
            ) {
                let doc: String = if kind == 0 {
                    "[".repeat(depth)
                } else {
                    "{\"k\":".repeat(depth)
                };
                let err = parse(&doc).unwrap_err();
                prop_assert!(
                    err.message.contains("nesting"),
                    "depth {} gave: {}", depth, err
                );
            }

            #[test]
            fn escapes_and_numbers_never_panic(bytes in prop::collection::vec(0u8..=255, 0..64)) {
                // Exercise the string-escape and number scanners directly.
                let mut s = String::from("\"\\u");
                s.push_str(&jsonish(&bytes));
                let _ = parse(&s);
                let mut num = String::from("-");
                num.push_str(&String::from_utf8_lossy(&bytes));
                let _ = parse(&num);
            }
        }
    }
}
