//! # vrl-obs — unified observability for the VRL-DRAM simulators
//!
//! One layer, three concerns, shared by every front end (`dram::sim`,
//! `dram::controller`, `sched`, `guard`, `exec`):
//!
//! 1. **Structured event tracing** — the [`Recorder`](recorder::Recorder)
//!    implements the simulator's observer trait and captures typed
//!    [`Event`](event::Event)s (activations, full/partial refreshes,
//!    postpones, pull-ins, scrubs, degrades, injected faults, queue
//!    stalls) into a bounded [`EventRing`](ring::EventRing). Overflow
//!    drops the *newest* events and counts them — recording never
//!    perturbs or blocks the simulation.
//! 2. **Metrics registry** — named monotonic counters, gauges, and
//!    fixed-bucket histograms ([`MetricsRegistry`](metrics::MetricsRegistry))
//!    with handle-based hot paths and deterministic cross-worker
//!    snapshot merging (counters sum, gauges max, histograms bucket-wise).
//! 3. **Profiling hooks** — RAII span timers
//!    ([`PhaseProfiler`](profile::PhaseProfiler)) that accumulate a
//!    per-phase wall/cycle breakdown.
//!
//! Exports go to Chrome `trace_event` JSON
//! ([`chrome_trace_json`](export::chrome_trace_json), loadable in
//! Perfetto or `chrome://tracing`) and flat JSON snapshots; the
//! [`validate`] module re-parses exported documents with a hand-rolled
//! JSON reader so the CLI and CI can check them without external tools.
//!
//! ## Zero-cost when off
//!
//! The observer trait's hooks all have no-op defaults and the simulators
//! take the observer generically, so the [`NopObserver`] path
//! monomorphises to straight-line code. The workspace test
//! `tests/observability.rs` asserts the observed-off and observed-on
//! runs are bit-identical.

#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod expose;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod ring;
pub mod series;
pub mod validate;

/// The observer trait every front end accepts — re-exported so callers
/// can depend on `vrl-obs` alone.
pub use vrl_dram_sim::sim::SimObserver as Observer;

/// The zero-cost "observability off" observer (re-export of the
/// simulator's `NullObserver`).
pub use vrl_dram_sim::sim::NullObserver as NopObserver;

/// Fan an event stream out to two observers at once (e.g. a `Guard`
/// plus a `Recorder`).
pub use vrl_dram_sim::sim::Fanout;

pub use event::{DegradeStep, Event, EventKind, ShedReason};
pub use export::chrome_trace_json;
pub use expose::{
    histogram_snapshot, histogram_total, is_name_sorted, parse_exposition, render_exposition,
    render_exposition_filtered, sanitize_name, scalar_values, ExpoFamily, ExpoKind,
};
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use profile::PhaseProfiler;
pub use recorder::{merge_streams, EventStream, Recorder};
pub use ring::EventRing;
pub use series::{SnapshotDelta, SnapshotRing, TimedSnapshot};
pub use validate::{validate_chrome_trace, TraceSummary};
