//! The structured event model: typed simulation events with cycle
//! timestamps, bank/row coordinates, and per-stream sequence numbers.

use vrl_dram_sim::policy::DegradeAction;
use vrl_dram_sim::timing::RefreshLatency;

/// What one degradation-ladder step changed — [`DegradeAction`] with the
/// retention-bin payload flattened to its period so events carry plain
/// integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradeStep {
    /// The row's MPRSF was halved; carries the new value.
    MprsfHalved(u8),
    /// The row was re-binned; carries the new period in ms.
    BinDemoted(u32),
    /// The row was already at the most conservative configuration.
    AtFloor,
}

impl From<DegradeAction> for DegradeStep {
    fn from(action: DegradeAction) -> Self {
        match action {
            DegradeAction::MprsfHalved(m) => DegradeStep::MprsfHalved(m),
            DegradeAction::BinDemoted(bin) => DegradeStep::BinDemoted(bin.period_ms() as u32),
            DegradeAction::AtFloor => DegradeStep::AtFloor,
        }
    }
}

impl DegradeStep {
    /// Severity rank on the degradation ladder: strictly increasing as a
    /// row moves toward the floor (larger MPRSF → smaller rank; longer
    /// demoted period → smaller rank; `AtFloor` is the top). A valid
    /// ladder emits a non-decreasing rank sequence per row — the
    /// monotonicity the fault-injection tests assert on the event
    /// stream.
    pub fn severity_rank(self) -> u64 {
        match self {
            // MPRSF is at most 2^nbits − 1 < 256.
            DegradeStep::MprsfHalved(m) => 256 - u64::from(m),
            // Periods shrink toward the 64 ms floor; 1_000_000 ms is far
            // above any bin.
            DegradeStep::BinDemoted(period_ms) => 256 + (1_000_000 - u64::from(period_ms)),
            DegradeStep::AtFloor => u64::MAX,
        }
    }
}

/// The event vocabulary shared by every front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A row activation (row-miss access).
    Activate,
    /// A completed full-latency refresh.
    RefreshFull,
    /// A completed partial-latency refresh.
    RefreshPartial,
    /// A due refresh yielded to demand and was re-queued.
    RefreshPostponed,
    /// A refresh executed early on an idle bank.
    RefreshPullIn,
    /// A guard background scrub read.
    GuardScrub,
    /// One degradation-ladder step applied by the guard.
    GuardDegrade(DegradeStep),
    /// A fault injector dropped (`true`) or delayed (`false`) a refresh
    /// command.
    FaultInjected {
        /// Whether the command was dropped rather than delayed.
        dropped: bool,
    },
    /// The request queue was full while an arrival waited; carries the
    /// queue occupancy.
    QueueStall {
        /// Queue occupancy at the stalled cycle.
        depth: u32,
    },
}

impl EventKind {
    /// The kind's display name — the Chrome trace event `name` field.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Activate => "Activate",
            EventKind::RefreshFull => "RefreshFull",
            EventKind::RefreshPartial => "RefreshPartial",
            EventKind::RefreshPostponed => "RefreshPostponed",
            EventKind::RefreshPullIn => "RefreshPullIn",
            EventKind::GuardScrub => "GuardScrub",
            EventKind::GuardDegrade(_) => "GuardDegrade",
            EventKind::FaultInjected { .. } => "FaultInjected",
            EventKind::QueueStall { .. } => "QueueStall",
        }
    }

    /// The kind for a completed refresh of the given latency class.
    pub fn refresh(kind: RefreshLatency) -> Self {
        match kind {
            RefreshLatency::Full => EventKind::RefreshFull,
            RefreshLatency::Partial => EventKind::RefreshPartial,
        }
    }
}

/// One recorded simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Position in the recording stream (0-based, gap-free until the
    /// ring starts dropping).
    pub seq: u64,
    /// Simulation cycle the event completed (or was decided) at.
    pub cycle: u64,
    /// Bank the row belongs to (0 on single-bank front ends).
    pub bank: u32,
    /// Global row index (`u32::MAX` for row-less events such as queue
    /// stalls).
    pub row: u32,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// The merge key events are ordered by across worker streams:
    /// `(cycle, bank, seq)`. Sorting stably by this key makes merged
    /// streams independent of pool shape (see
    /// `tests/trace_determinism.rs`).
    pub fn merge_key(&self) -> (u64, u32, u64) {
        (self.cycle, self.bank, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrade_ranks_follow_the_ladder() {
        let ladder = [
            DegradeStep::MprsfHalved(3),
            DegradeStep::MprsfHalved(1),
            DegradeStep::MprsfHalved(0),
            DegradeStep::BinDemoted(192),
            DegradeStep::BinDemoted(128),
            DegradeStep::BinDemoted(64),
            DegradeStep::AtFloor,
        ];
        for pair in ladder.windows(2) {
            assert!(
                pair[0].severity_rank() < pair[1].severity_rank(),
                "{pair:?} must be strictly increasing"
            );
        }
    }

    #[test]
    fn kinds_have_stable_names() {
        assert_eq!(
            EventKind::refresh(RefreshLatency::Full).name(),
            "RefreshFull"
        );
        assert_eq!(
            EventKind::refresh(RefreshLatency::Partial).name(),
            "RefreshPartial"
        );
        assert_eq!(
            EventKind::GuardDegrade(DegradeStep::AtFloor).name(),
            "GuardDegrade"
        );
    }

    #[test]
    fn degrade_steps_convert_from_actions() {
        use vrl_retention::binning::RefreshBin;
        assert_eq!(
            DegradeStep::from(DegradeAction::MprsfHalved(2)),
            DegradeStep::MprsfHalved(2)
        );
        assert_eq!(
            DegradeStep::from(DegradeAction::BinDemoted(RefreshBin::Ms192)),
            DegradeStep::BinDemoted(192)
        );
        assert_eq!(
            DegradeStep::from(DegradeAction::AtFloor),
            DegradeStep::AtFloor
        );
    }
}
