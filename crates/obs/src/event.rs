//! The structured event model: typed simulation events with cycle
//! timestamps, bank/row coordinates, and per-stream sequence numbers.

use vrl_dram_sim::policy::DegradeAction;
use vrl_dram_sim::timing::RefreshLatency;

/// What one degradation-ladder step changed — [`DegradeAction`] with the
/// retention-bin payload flattened to its period so events carry plain
/// integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradeStep {
    /// The row's MPRSF was halved; carries the new value.
    MprsfHalved(u8),
    /// The row was re-binned; carries the new period in ms.
    BinDemoted(u32),
    /// The row was already at the most conservative configuration.
    AtFloor,
}

impl From<DegradeAction> for DegradeStep {
    fn from(action: DegradeAction) -> Self {
        match action {
            DegradeAction::MprsfHalved(m) => DegradeStep::MprsfHalved(m),
            DegradeAction::BinDemoted(bin) => DegradeStep::BinDemoted(bin.period_ms() as u32),
            DegradeAction::AtFloor => DegradeStep::AtFloor,
        }
    }
}

impl DegradeStep {
    /// Severity rank on the degradation ladder: strictly increasing as a
    /// row moves toward the floor (larger MPRSF → smaller rank; longer
    /// demoted period → smaller rank; `AtFloor` is the top). A valid
    /// ladder emits a non-decreasing rank sequence per row — the
    /// monotonicity the fault-injection tests assert on the event
    /// stream.
    pub fn severity_rank(self) -> u64 {
        match self {
            // MPRSF is at most 2^nbits − 1 < 256.
            DegradeStep::MprsfHalved(m) => 256 - u64::from(m),
            // Periods shrink toward the 64 ms floor; 1_000_000 ms is far
            // above any bin.
            DegradeStep::BinDemoted(period_ms) => 256 + (1_000_000 - u64::from(period_ms)),
            DegradeStep::AtFloor => u64::MAX,
        }
    }
}

/// The event vocabulary shared by every front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A row activation (row-miss access).
    Activate,
    /// A completed full-latency refresh.
    RefreshFull,
    /// A completed partial-latency refresh.
    RefreshPartial,
    /// A due refresh yielded to demand and was re-queued.
    RefreshPostponed,
    /// A refresh executed early on an idle bank.
    RefreshPullIn,
    /// A guard background scrub read.
    GuardScrub,
    /// One degradation-ladder step applied by the guard.
    GuardDegrade(DegradeStep),
    /// A fault injector dropped (`true`) or delayed (`false`) a refresh
    /// command.
    FaultInjected {
        /// Whether the command was dropped rather than delayed.
        dropped: bool,
    },
    /// The request queue was full while an arrival waited; carries the
    /// queue occupancy.
    QueueStall {
        /// Queue occupancy at the stalled cycle.
        depth: u32,
    },
    /// The supervisor re-ran a panicked matrix job after a deterministic
    /// backoff. For exec events, `cycle` carries the job index and `row`
    /// is the row-less sentinel.
    ExecRetry {
        /// Which attempt is about to run (1 = first retry).
        attempt: u32,
        /// The recorded (never slept) backoff, in virtual ticks.
        backoff: u32,
    },
    /// The supervisor gave up on a matrix job and quarantined its typed
    /// error, keeping the rest of the matrix alive.
    ExecQuarantine {
        /// Total attempts the job was given.
        attempts: u32,
        /// Whether the final failure was a panic (vs a typed job error).
        panicked: bool,
    },
    /// A job's virtual deadline expired before its retry budget did.
    ExecDeadline,
    /// Repeated pool failures degraded the matrix to serial execution.
    ExecDegraded {
        /// Panicking jobs that triggered the degradation.
        failures: u32,
    },
    /// A served experiment job was validated and enqueued. For serve
    /// events, `cycle` carries the job id and `row` is the row-less
    /// sentinel.
    JobQueued {
        /// Queue depth (queued + running) right after the enqueue.
        depth: u32,
    },
    /// A served job started executing on a pool worker.
    JobStarted,
    /// A served job finished and its result frame was delivered.
    JobCompleted {
        /// Whether the result came from the content-addressed result
        /// cache rather than a fresh simulation.
        cached: bool,
    },
    /// A served job panicked; the worker survived and the job was
    /// quarantined with an error frame.
    JobQuarantined,
    /// The server shed a request at admission: the connection or job
    /// queue was full, a request line overran the byte limit, or a
    /// connection idled past its read timeout. The request was rejected
    /// with a typed frame instead of being buffered unboundedly.
    JobShed {
        /// Why the request was shed (see
        /// [`ShedReason`] for the reject-frame vocabulary).
        reason: ShedReason,
    },
    /// A disk-tier artifact failed its checksum (or was truncated) on
    /// load; the file was renamed `*.quar` and the artifact rebuilt —
    /// corrupt bytes are never served.
    ArtifactQuarantined,
}

/// Why the server shed a request at admission. Mirrors the `reject`
/// field of the wire protocol's typed reject frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Connection or job-queue capacity was exhausted.
    Busy,
    /// A request line exceeded the configured byte limit.
    LineTooLong,
    /// The connection idled past its read timeout.
    Timeout,
}

impl ShedReason {
    /// The wire name — the `reject` field of the reject frame.
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::Busy => "busy",
            ShedReason::LineTooLong => "line_too_long",
            ShedReason::Timeout => "timeout",
        }
    }
}

impl EventKind {
    /// The kind's display name — the Chrome trace event `name` field.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Activate => "Activate",
            EventKind::RefreshFull => "RefreshFull",
            EventKind::RefreshPartial => "RefreshPartial",
            EventKind::RefreshPostponed => "RefreshPostponed",
            EventKind::RefreshPullIn => "RefreshPullIn",
            EventKind::GuardScrub => "GuardScrub",
            EventKind::GuardDegrade(_) => "GuardDegrade",
            EventKind::FaultInjected { .. } => "FaultInjected",
            EventKind::QueueStall { .. } => "QueueStall",
            EventKind::ExecRetry { .. } => "ExecRetry",
            EventKind::ExecQuarantine { .. } => "ExecQuarantine",
            EventKind::ExecDeadline => "ExecDeadline",
            EventKind::ExecDegraded { .. } => "ExecDegraded",
            EventKind::JobQueued { .. } => "JobQueued",
            EventKind::JobStarted => "JobStarted",
            EventKind::JobCompleted { .. } => "JobCompleted",
            EventKind::JobQuarantined => "JobQuarantined",
            EventKind::JobShed { .. } => "JobShed",
            EventKind::ArtifactQuarantined => "ArtifactQuarantined",
        }
    }

    /// The kind for a completed refresh of the given latency class.
    pub fn refresh(kind: RefreshLatency) -> Self {
        match kind {
            RefreshLatency::Full => EventKind::RefreshFull,
            RefreshLatency::Partial => EventKind::RefreshPartial,
        }
    }
}

/// One recorded simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Position in the recording stream (0-based, gap-free until the
    /// ring starts dropping).
    pub seq: u64,
    /// Simulation cycle the event completed (or was decided) at.
    pub cycle: u64,
    /// Bank the row belongs to (0 on single-bank front ends).
    pub bank: u32,
    /// Global row index (`u32::MAX` for row-less events such as queue
    /// stalls).
    pub row: u32,
    /// What happened.
    pub kind: EventKind,
}

impl vrl_snap::Snapshot for DegradeStep {
    fn save(&self, enc: &mut vrl_snap::Encoder) {
        match *self {
            DegradeStep::MprsfHalved(m) => {
                enc.put_u8(0);
                enc.put_u8(m);
            }
            DegradeStep::BinDemoted(period_ms) => {
                enc.put_u8(1);
                enc.put_u32(period_ms);
            }
            DegradeStep::AtFloor => enc.put_u8(2),
        }
    }

    fn load(dec: &mut vrl_snap::Decoder<'_>) -> Result<Self, vrl_snap::SnapError> {
        match dec.take_u8()? {
            0 => Ok(DegradeStep::MprsfHalved(dec.take_u8()?)),
            1 => Ok(DegradeStep::BinDemoted(dec.take_u32()?)),
            2 => Ok(DegradeStep::AtFloor),
            tag => Err(vrl_snap::SnapError::Malformed {
                what: format!("unknown DegradeStep tag {tag}"),
            }),
        }
    }
}

impl vrl_snap::Snapshot for EventKind {
    fn save(&self, enc: &mut vrl_snap::Encoder) {
        match *self {
            EventKind::Activate => enc.put_u8(0),
            EventKind::RefreshFull => enc.put_u8(1),
            EventKind::RefreshPartial => enc.put_u8(2),
            EventKind::RefreshPostponed => enc.put_u8(3),
            EventKind::RefreshPullIn => enc.put_u8(4),
            EventKind::GuardScrub => enc.put_u8(5),
            EventKind::GuardDegrade(step) => {
                enc.put_u8(6);
                step.save(enc);
            }
            EventKind::FaultInjected { dropped } => {
                enc.put_u8(7);
                dropped.save(enc);
            }
            EventKind::QueueStall { depth } => {
                enc.put_u8(8);
                enc.put_u32(depth);
            }
            EventKind::ExecRetry { attempt, backoff } => {
                enc.put_u8(9);
                enc.put_u32(attempt);
                enc.put_u32(backoff);
            }
            EventKind::ExecQuarantine { attempts, panicked } => {
                enc.put_u8(10);
                enc.put_u32(attempts);
                panicked.save(enc);
            }
            EventKind::ExecDeadline => enc.put_u8(11),
            EventKind::ExecDegraded { failures } => {
                enc.put_u8(12);
                enc.put_u32(failures);
            }
            EventKind::JobQueued { depth } => {
                enc.put_u8(13);
                enc.put_u32(depth);
            }
            EventKind::JobStarted => enc.put_u8(14),
            EventKind::JobCompleted { cached } => {
                enc.put_u8(15);
                cached.save(enc);
            }
            EventKind::JobQuarantined => enc.put_u8(16),
            EventKind::JobShed { reason } => {
                enc.put_u8(17);
                enc.put_u8(match reason {
                    ShedReason::Busy => 0,
                    ShedReason::LineTooLong => 1,
                    ShedReason::Timeout => 2,
                });
            }
            EventKind::ArtifactQuarantined => enc.put_u8(18),
        }
    }

    fn load(dec: &mut vrl_snap::Decoder<'_>) -> Result<Self, vrl_snap::SnapError> {
        Ok(match dec.take_u8()? {
            0 => EventKind::Activate,
            1 => EventKind::RefreshFull,
            2 => EventKind::RefreshPartial,
            3 => EventKind::RefreshPostponed,
            4 => EventKind::RefreshPullIn,
            5 => EventKind::GuardScrub,
            6 => EventKind::GuardDegrade(DegradeStep::load(dec)?),
            7 => EventKind::FaultInjected {
                dropped: bool::load(dec)?,
            },
            8 => EventKind::QueueStall {
                depth: dec.take_u32()?,
            },
            9 => EventKind::ExecRetry {
                attempt: dec.take_u32()?,
                backoff: dec.take_u32()?,
            },
            10 => EventKind::ExecQuarantine {
                attempts: dec.take_u32()?,
                panicked: bool::load(dec)?,
            },
            11 => EventKind::ExecDeadline,
            12 => EventKind::ExecDegraded {
                failures: dec.take_u32()?,
            },
            13 => EventKind::JobQueued {
                depth: dec.take_u32()?,
            },
            14 => EventKind::JobStarted,
            15 => EventKind::JobCompleted {
                cached: bool::load(dec)?,
            },
            16 => EventKind::JobQuarantined,
            17 => EventKind::JobShed {
                reason: match dec.take_u8()? {
                    0 => ShedReason::Busy,
                    1 => ShedReason::LineTooLong,
                    2 => ShedReason::Timeout,
                    tag => {
                        return Err(vrl_snap::SnapError::Malformed {
                            what: format!("unknown ShedReason tag {tag}"),
                        })
                    }
                },
            },
            18 => EventKind::ArtifactQuarantined,
            tag => {
                return Err(vrl_snap::SnapError::Malformed {
                    what: format!("unknown EventKind tag {tag}"),
                })
            }
        })
    }
}

impl vrl_snap::Snapshot for Event {
    fn save(&self, enc: &mut vrl_snap::Encoder) {
        enc.put_u64(self.seq);
        enc.put_u64(self.cycle);
        enc.put_u32(self.bank);
        enc.put_u32(self.row);
        self.kind.save(enc);
    }

    fn load(dec: &mut vrl_snap::Decoder<'_>) -> Result<Self, vrl_snap::SnapError> {
        Ok(Event {
            seq: dec.take_u64()?,
            cycle: dec.take_u64()?,
            bank: dec.take_u32()?,
            row: dec.take_u32()?,
            kind: EventKind::load(dec)?,
        })
    }
}

impl Event {
    /// The merge key events are ordered by across worker streams:
    /// `(cycle, bank, seq)`. Sorting stably by this key makes merged
    /// streams independent of pool shape (see
    /// `tests/trace_determinism.rs`).
    pub fn merge_key(&self) -> (u64, u32, u64) {
        (self.cycle, self.bank, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrade_ranks_follow_the_ladder() {
        let ladder = [
            DegradeStep::MprsfHalved(3),
            DegradeStep::MprsfHalved(1),
            DegradeStep::MprsfHalved(0),
            DegradeStep::BinDemoted(192),
            DegradeStep::BinDemoted(128),
            DegradeStep::BinDemoted(64),
            DegradeStep::AtFloor,
        ];
        for pair in ladder.windows(2) {
            assert!(
                pair[0].severity_rank() < pair[1].severity_rank(),
                "{pair:?} must be strictly increasing"
            );
        }
    }

    #[test]
    fn kinds_have_stable_names() {
        assert_eq!(
            EventKind::refresh(RefreshLatency::Full).name(),
            "RefreshFull"
        );
        assert_eq!(
            EventKind::refresh(RefreshLatency::Partial).name(),
            "RefreshPartial"
        );
        assert_eq!(
            EventKind::GuardDegrade(DegradeStep::AtFloor).name(),
            "GuardDegrade"
        );
    }

    #[test]
    fn event_kinds_round_trip_through_the_codec() {
        use vrl_snap::{Decoder, Encoder, SnapError, Snapshot as _};
        let kinds = [
            EventKind::Activate,
            EventKind::RefreshFull,
            EventKind::RefreshPartial,
            EventKind::RefreshPostponed,
            EventKind::RefreshPullIn,
            EventKind::GuardScrub,
            EventKind::GuardDegrade(DegradeStep::MprsfHalved(3)),
            EventKind::GuardDegrade(DegradeStep::BinDemoted(192)),
            EventKind::GuardDegrade(DegradeStep::AtFloor),
            EventKind::FaultInjected { dropped: true },
            EventKind::QueueStall { depth: 9 },
            EventKind::ExecRetry {
                attempt: 2,
                backoff: 17,
            },
            EventKind::ExecQuarantine {
                attempts: 3,
                panicked: true,
            },
            EventKind::ExecDeadline,
            EventKind::ExecDegraded { failures: 4 },
            EventKind::JobQueued { depth: 3 },
            EventKind::JobStarted,
            EventKind::JobCompleted { cached: true },
            EventKind::JobQuarantined,
            EventKind::JobShed {
                reason: ShedReason::Busy,
            },
            EventKind::JobShed {
                reason: ShedReason::LineTooLong,
            },
            EventKind::JobShed {
                reason: ShedReason::Timeout,
            },
            EventKind::ArtifactQuarantined,
        ];
        for kind in kinds {
            let event = Event {
                seq: 7,
                cycle: 1234,
                bank: 2,
                row: 70,
                kind,
            };
            let mut enc = Encoder::new();
            event.save(&mut enc);
            let bytes = enc.into_bytes();
            let back = Event::load(&mut Decoder::new(&bytes)).unwrap();
            assert_eq!(back, event, "{kind:?} must round-trip");
        }
        // An unknown tag is a typed error, not a panic.
        assert!(matches!(
            EventKind::load(&mut Decoder::new(&[200])),
            Err(SnapError::Malformed { .. })
        ));
    }

    #[test]
    fn degrade_steps_convert_from_actions() {
        use vrl_retention::binning::RefreshBin;
        assert_eq!(
            DegradeStep::from(DegradeAction::MprsfHalved(2)),
            DegradeStep::MprsfHalved(2)
        );
        assert_eq!(
            DegradeStep::from(DegradeAction::BinDemoted(RefreshBin::Ms192)),
            DegradeStep::BinDemoted(192)
        );
        assert_eq!(
            DegradeStep::from(DegradeAction::AtFloor),
            DegradeStep::AtFloor
        );
    }
}
