//! A bounded event buffer with drop-newest overflow semantics.
//!
//! Recording must never perturb the simulation, so the ring refuses to
//! grow past its configured capacity: once full, new events are counted
//! in [`EventRing::dropped`] and discarded. Dropping the *newest* events
//! (rather than overwriting the oldest) keeps the retained prefix
//! gap-free in `seq`, which the merge rules rely on.

use crate::event::{Event, EventKind};

/// Default ring capacity — large enough for the workloads the repo
/// ships, small enough that a recorder is cheap to allocate per worker.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// Fixed-capacity event buffer. See the module docs for the overflow
/// contract.
#[derive(Debug, Clone)]
pub struct EventRing {
    events: Vec<Event>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        EventRing {
            events: Vec::new(),
            capacity: capacity.max(1),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Record one event, assigning it the next sequence number. Returns
    /// `false` if the ring was full and the event was dropped (the drop
    /// is still counted and consumes a sequence number, so `seq` remains
    /// a faithful index into the *offered* stream).
    pub fn push(&mut self, cycle: u64, bank: u32, row: u32, kind: EventKind) -> bool {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return false;
        }
        self.events.push(Event {
            seq,
            cycle,
            bank,
            row,
            kind,
        });
        true
    }

    /// Events retained so far, in recording order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// How many events overflowed the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events offered (retained + dropped).
    pub fn offered(&self) -> u64 {
        self.next_seq
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Consume the ring, returning the retained events.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

impl Default for EventRing {
    fn default() -> Self {
        EventRing::with_capacity(DEFAULT_CAPACITY)
    }
}

impl vrl_snap::Snapshot for EventRing {
    fn save(&self, enc: &mut vrl_snap::Encoder) {
        self.events.save(enc);
        enc.put_usize(self.capacity);
        enc.put_u64(self.next_seq);
        enc.put_u64(self.dropped);
    }

    fn load(dec: &mut vrl_snap::Decoder<'_>) -> Result<Self, vrl_snap::SnapError> {
        let events = Vec::<Event>::load(dec)?;
        let capacity = dec.take_usize()?;
        let next_seq = dec.take_u64()?;
        let dropped = dec.take_u64()?;
        if events.len() > capacity {
            return Err(vrl_snap::SnapError::Malformed {
                what: format!(
                    "ring holds {} events but claims capacity {}",
                    events.len(),
                    capacity
                ),
            });
        }
        if (events.len() as u64) + dropped != next_seq {
            return Err(vrl_snap::SnapError::Malformed {
                what: format!(
                    "ring seq accounting broken: {} retained + {} dropped != {} offered",
                    events.len(),
                    dropped,
                    next_seq
                ),
            });
        }
        Ok(EventRing {
            events,
            capacity,
            next_seq,
            dropped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_newest_past_capacity() {
        let mut ring = EventRing::with_capacity(2);
        assert!(ring.push(10, 0, 1, EventKind::Activate));
        assert!(ring.push(20, 0, 2, EventKind::RefreshFull));
        assert!(!ring.push(30, 0, 3, EventKind::RefreshPartial));
        assert_eq!(ring.events().len(), 2);
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.offered(), 3);
        // The retained prefix is gap-free.
        assert_eq!(ring.events()[0].seq, 0);
        assert_eq!(ring.events()[1].seq, 1);
        assert_eq!(ring.events()[1].row, 2);
    }

    #[test]
    fn ring_snapshot_round_trips_mid_stream() {
        use vrl_snap::{Decoder, Encoder, SnapError, Snapshot as _};
        let mut ring = EventRing::with_capacity(2);
        ring.push(10, 0, 1, EventKind::Activate);
        ring.push(20, 1, 70, EventKind::QueueStall { depth: 4 });
        ring.push(30, 0, 3, EventKind::RefreshPartial); // dropped
        let mut enc = Encoder::new();
        ring.save(&mut enc);
        let bytes = enc.into_bytes();
        let restored = EventRing::load(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(restored.events(), ring.events());
        assert_eq!(restored.dropped(), 1);
        assert_eq!(restored.offered(), 3);
        assert_eq!(restored.capacity(), 2);
        // A truncated payload is a typed error, not a panic.
        assert!(matches!(
            EventRing::load(&mut Decoder::new(&bytes[..bytes.len() - 1])),
            Err(SnapError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut ring = EventRing::with_capacity(0);
        assert_eq!(ring.capacity(), 1);
        assert!(ring.push(0, 0, 0, EventKind::Activate));
        assert!(!ring.push(1, 0, 0, EventKind::Activate));
    }
}
