//! The metrics registry: named monotonic counters, gauges, and
//! fixed-bucket histograms with cheap snapshots and a deterministic
//! cross-worker merge.
//!
//! Handles ([`CounterId`] et al.) are resolved once at registration so
//! the hot path is a single indexed add — no string hashing per update.
//! Snapshots carry the values keyed by name in [`BTreeMap`]s, so merging
//! and serialising are deterministic regardless of registration order.

use std::collections::BTreeMap;
use std::fmt;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

#[derive(Debug, Clone)]
struct Histogram {
    /// Upper bounds (inclusive) of each finite bucket; a final overflow
    /// bucket catches everything above the last bound.
    bounds: Vec<u64>,
    counts: Vec<u64>,
}

/// Registry of named metrics owned by one worker (or the main thread).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counter_names: Vec<String>,
    counters: Vec<u64>,
    gauge_names: Vec<String>,
    gauges: Vec<u64>,
    histogram_names: Vec<String>,
    histograms: Vec<Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Register (or look up) a monotonic counter.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counter_names.iter().position(|n| n == name) {
            return CounterId(i);
        }
        self.counter_names.push(name.to_string());
        self.counters.push(0);
        CounterId(self.counters.len() - 1)
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauge_names.iter().position(|n| n == name) {
            return GaugeId(i);
        }
        self.gauge_names.push(name.to_string());
        self.gauges.push(0);
        GaugeId(self.gauges.len() - 1)
    }

    /// Register (or look up) a histogram with the given inclusive bucket
    /// upper bounds. Bounds must be strictly increasing; an overflow
    /// bucket is appended implicitly. Re-registering an existing name
    /// with different bounds returns an error.
    pub fn histogram(&mut self, name: &str, bounds: &[u64]) -> Result<HistogramId, MetricsError> {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        if let Some(i) = self.histogram_names.iter().position(|n| n == name) {
            if self.histograms[i].bounds != bounds {
                return Err(MetricsError::BoundsMismatch {
                    name: name.to_string(),
                });
            }
            return Ok(HistogramId(i));
        }
        self.histogram_names.push(name.to_string());
        self.histograms.push(Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
        });
        Ok(HistogramId(self.histograms.len() - 1))
    }

    /// Add `delta` to a counter.
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0] += delta;
    }

    /// Increment a counter by one.
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Set a gauge to `value`.
    pub fn set(&mut self, id: GaugeId, value: u64) {
        self.gauges[id.0] = value;
    }

    /// Raise a gauge to `value` if it is higher than the current value.
    pub fn set_max(&mut self, id: GaugeId, value: u64) {
        if value > self.gauges[id.0] {
            self.gauges[id.0] = value;
        }
    }

    /// Record one observation into a histogram.
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        let h = &mut self.histograms[id.0];
        let bucket = h
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(h.bounds.len());
        h.counts[bucket] += 1;
    }

    /// Current counter value (test/inspection convenience).
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    /// Snapshot every metric by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counter_names
                .iter()
                .cloned()
                .zip(self.counters.iter().copied())
                .collect(),
            gauges: self
                .gauge_names
                .iter()
                .cloned()
                .zip(self.gauges.iter().copied())
                .collect(),
            histograms: self
                .histogram_names
                .iter()
                .cloned()
                .zip(self.histograms.iter().cloned().map(|h| HistogramSnapshot {
                    bounds: h.bounds,
                    counts: h.counts,
                }))
                .collect(),
        }
    }
}

/// A frozen histogram: bucket bounds plus counts (one extra overflow
/// bucket).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds of the finite buckets.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
}

impl HistogramSnapshot {
    /// Total observations across all buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`): the inclusive upper
    /// bound of the bucket holding the rank-`⌈q·total⌉` observation, or
    /// 0 for an empty histogram. Like
    /// `vrl_sched::LatencyHistogram::quantile`, the answer is exact
    /// only up to the bucket width; samples landing in the overflow
    /// bucket report the last finite bound (the tightest lower bound
    /// the snapshot can justify).
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return match self.bounds.get(i) {
                    Some(&bound) => bound,
                    None => self.bounds.last().copied().unwrap_or(0),
                };
            }
        }
        self.bounds.last().copied().unwrap_or(0)
    }
}

/// A point-in-time copy of every metric, keyed by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Gauges (merge takes the max).
    pub gauges: BTreeMap<String, u64>,
    /// Histograms (merge sums bucket-wise).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Merge failures — currently only incompatible histogram shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricsError {
    /// Two snapshots (or registrations) disagree on a histogram's bucket
    /// bounds.
    BoundsMismatch {
        /// The offending histogram's name.
        name: String,
    },
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::BoundsMismatch { name } => {
                write!(
                    f,
                    "histogram `{name}` registered with conflicting bucket bounds"
                )
            }
        }
    }
}

impl std::error::Error for MetricsError {}

impl MetricsSnapshot {
    /// Fold `other` into `self`: counters sum, gauges take the max,
    /// histograms sum bucket-wise. Metric sets are unioned, so merging
    /// snapshots from heterogeneous workers is fine; the result depends
    /// only on the multiset of inputs (names are sorted, all merge ops
    /// are commutative and associative).
    pub fn merge(&mut self, other: &MetricsSnapshot) -> Result<(), MetricsError> {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(0);
            if *v > *slot {
                *slot = *v;
            }
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
                Some(mine) => {
                    if mine.bounds != h.bounds {
                        return Err(MetricsError::BoundsMismatch { name: name.clone() });
                    }
                    for (a, b) in mine.counts.iter_mut().zip(&h.counts) {
                        *a += b;
                    }
                }
            }
        }
        Ok(())
    }

    /// Merge an iterator of snapshots into one.
    pub fn merged<'a, I>(snapshots: I) -> Result<MetricsSnapshot, MetricsError>
    where
        I: IntoIterator<Item = &'a MetricsSnapshot>,
    {
        let mut out = MetricsSnapshot::default();
        for s in snapshots {
            out.merge(s)?;
        }
        Ok(out)
    }

    /// A counter's value, or 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value, or 0 if absent.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Serialise to a flat JSON object (the vendored serde has no map
    /// support, so this is written by hand; keys are escaped).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"vrl-metrics-v1\",\"counters\":{");
        push_entries(
            &mut out,
            self.counters.iter().map(|(k, v)| (k, v.to_string())),
        );
        out.push_str("},\"gauges\":{");
        push_entries(
            &mut out,
            self.gauges.iter().map(|(k, v)| (k, v.to_string())),
        );
        out.push_str("},\"histograms\":{");
        let hists = self.histograms.iter().map(|(k, h)| {
            let bounds: Vec<String> = h.bounds.iter().map(u64::to_string).collect();
            let counts: Vec<String> = h.counts.iter().map(u64::to_string).collect();
            (
                k,
                format!(
                    "{{\"bounds\":[{}],\"counts\":[{}]}}",
                    bounds.join(","),
                    counts.join(",")
                ),
            )
        });
        push_entries(&mut out, hists);
        out.push_str("}}");
        out
    }
}

fn push_entries<'a, V, I>(out: &mut String, entries: I)
where
    V: AsRef<str>,
    I: Iterator<Item = (&'a String, V)>,
{
    let mut first = true;
    for (key, value) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        serde::write_json_string(key, out);
        out.push(':');
        out.push_str(value.as_ref());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("sim.refreshes");
        let g = reg.gauge("queue.max_depth");
        reg.add(c, 5);
        reg.inc(c);
        reg.set_max(g, 7);
        reg.set_max(g, 3);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sim.refreshes"), 6);
        assert_eq!(snap.gauge("queue.max_depth"), 7);
        // Re-registering returns the same handle.
        assert_eq!(reg.counter("sim.refreshes"), c);
    }

    #[test]
    fn histograms_bucket_inclusively_with_overflow() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[10, 100]).unwrap();
        reg.observe(h, 10);
        reg.observe(h, 11);
        reg.observe(h, 1_000);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms["lat"].counts, vec![1, 1, 1]);
        assert_eq!(snap.histograms["lat"].total(), 3);
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = MetricsRegistry::new();
        let ca = a.counter("x");
        let ga = a.gauge("g");
        let ha = a.histogram("h", &[8]).unwrap();
        a.add(ca, 3);
        a.set_max(ga, 2);
        a.observe(ha, 4);

        let mut b = MetricsRegistry::new();
        let cb = b.counter("x");
        let gb = b.gauge("g");
        let hb = b.histogram("h", &[8]).unwrap();
        b.add(cb, 4);
        b.set_max(gb, 9);
        b.observe(hb, 99);

        let (sa, sb) = (a.snapshot(), b.snapshot());
        let ab = MetricsSnapshot::merged([&sa, &sb]).unwrap();
        let ba = MetricsSnapshot::merged([&sb, &sa]).unwrap();
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("x"), 7);
        assert_eq!(ab.gauge("g"), 9);
        assert_eq!(ab.histograms["h"].counts, vec![1, 1]);
    }

    #[test]
    fn merge_rejects_mismatched_bounds() {
        let mut a = MetricsRegistry::new();
        a.histogram("h", &[1]).unwrap();
        let mut b = MetricsRegistry::new();
        b.histogram("h", &[2]).unwrap();
        let (sa, sb) = (a.snapshot(), b.snapshot());
        assert!(MetricsSnapshot::merged([&sa, &sb]).is_err());
        assert!(a.histogram("h", &[9]).is_err());
    }

    #[test]
    fn json_export_escapes_keys() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("weird \"name\"");
        reg.inc(c);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"weird \\\"name\\\"\":1"), "{json}");
        assert!(json.starts_with("{\"schema\":\"vrl-metrics-v1\""));
    }
}
