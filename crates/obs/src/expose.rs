//! Prometheus-style text exposition for [`MetricsSnapshot`]s.
//!
//! The renderer is **deterministic**: metrics are emitted in sorted
//! order of their sanitized names, histograms expand to cumulative
//! `_bucket{le="..."}` series ending in `+Inf` plus a `_count` total,
//! and two renders of the same snapshot are byte-identical. That makes
//! the output both scrapeable by real collectors and `cmp`-able in
//! tests and CI.
//!
//! A minimal [`parse_exposition`] reader round-trips the format so the
//! test suite (and CI smoke jobs) can validate rendered output without
//! external tools — the same philosophy as [`crate::validate`] for
//! Chrome traces.

use std::collections::BTreeMap;

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};

/// Maps a dotted metric name (`serve.cache.result_hits`) to the
/// exposition charset (`serve_cache_result_hits`): every character
/// outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit gains a
/// `_` prefix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Renders the full snapshot; see [`render_exposition_filtered`].
pub fn render_exposition(snapshot: &MetricsSnapshot) -> String {
    render_exposition_filtered(snapshot, None)
}

/// Renders `snapshot` as Prometheus-style text exposition, keeping only
/// metrics whose *original* (dotted) name starts with `prefix` when one
/// is given.
///
/// Output contract (pinned by `tests/exposition.rs`):
/// - metrics appear in ascending sanitized-name order, each introduced
///   by exactly one `# TYPE <name> <kind>` line;
/// - counters and gauges are a single `<name> <value>` sample;
/// - histograms expand to one cumulative `<name>_bucket{le="<bound>"}`
///   sample per finite bound, a final `le="+Inf"` sample, and a
///   `<name>_count` total (no `_sum`: the registry tracks bucket counts
///   only);
/// - every render of the same snapshot is byte-identical.
pub fn render_exposition_filtered(snapshot: &MetricsSnapshot, prefix: Option<&str>) -> String {
    let keep = |name: &str| prefix.is_none_or(|p| name.starts_with(p));
    // (sanitized name, block) pairs, sorted by sanitized name so the
    // output order is stable regardless of metric kind.
    let mut blocks: Vec<(String, String)> = Vec::new();
    for (name, value) in &snapshot.counters {
        if !keep(name) {
            continue;
        }
        let n = sanitize_name(name);
        blocks.push((n.clone(), format!("# TYPE {n} counter\n{n} {value}\n")));
    }
    for (name, value) in &snapshot.gauges {
        if !keep(name) {
            continue;
        }
        let n = sanitize_name(name);
        blocks.push((n.clone(), format!("# TYPE {n} gauge\n{n} {value}\n")));
    }
    for (name, hist) in &snapshot.histograms {
        if !keep(name) {
            continue;
        }
        let n = sanitize_name(name);
        let mut block = format!("# TYPE {n} histogram\n");
        let mut cumulative = 0u64;
        for (bound, count) in hist.bounds.iter().zip(&hist.counts) {
            cumulative += count;
            block.push_str(&format!("{n}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
        }
        cumulative += hist.counts.last().copied().unwrap_or(0);
        block.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
        block.push_str(&format!("{n}_count {cumulative}\n"));
        blocks.push((n, block));
    }
    blocks.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::new();
    for (_, block) in blocks {
        out.push_str(&block);
    }
    out
}

/// The metric kind declared by a `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpoKind {
    /// Monotonic counter.
    Counter,
    /// Point-in-time gauge.
    Gauge,
    /// Cumulative-bucket histogram.
    Histogram,
}

/// One metric family parsed back out of exposition text.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpoFamily {
    /// The sanitized metric name from the `# TYPE` line.
    pub name: String,
    /// Declared kind.
    pub kind: ExpoKind,
    /// Scalar samples: `(suffixed name, label or empty, value)`. For a
    /// histogram the `le` label value rides in the middle slot.
    pub samples: Vec<(String, String, u64)>,
}

/// Parses text produced by [`render_exposition`] back into families.
///
/// Strict by design: unknown kinds, samples before any `# TYPE` line,
/// malformed values, and samples whose name does not extend their
/// family's are all errors — CI uses this to prove rendered output is
/// well-formed, so leniency would hide bugs.
///
/// # Errors
///
/// Returns a message naming the offending line.
pub fn parse_exposition(text: &str) -> Result<Vec<ExpoFamily>, String> {
    let mut families: Vec<ExpoFamily> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(format!("line {n}: malformed TYPE line {line:?}"));
            };
            let kind = match kind {
                "counter" => ExpoKind::Counter,
                "gauge" => ExpoKind::Gauge,
                "histogram" => ExpoKind::Histogram,
                other => return Err(format!("line {n}: unknown metric kind {other:?}")),
            };
            families.push(ExpoFamily {
                name: name.to_owned(),
                kind,
                samples: Vec::new(),
            });
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment lines are legal noise.
        }
        let Some((name_part, value_part)) = line.rsplit_once(' ') else {
            return Err(format!("line {n}: sample without a value: {line:?}"));
        };
        let value: u64 = value_part
            .parse()
            .map_err(|e| format!("line {n}: bad sample value {value_part:?}: {e}"))?;
        let (name, label) = match name_part.split_once('{') {
            None => (name_part.to_owned(), String::new()),
            Some((base, labels)) => {
                let labels = labels
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {n}: unterminated label set: {line:?}"))?;
                let le = labels
                    .strip_prefix("le=\"")
                    .and_then(|l| l.strip_suffix('"'))
                    .ok_or_else(|| {
                        format!("line {n}: only le=\"...\" labels are known: {line:?}")
                    })?;
                (base.to_owned(), le.to_owned())
            }
        };
        let family = families
            .last_mut()
            .ok_or_else(|| format!("line {n}: sample before any TYPE line: {line:?}"))?;
        if name != family.name
            && name != format!("{}_bucket", family.name)
            && name != format!("{}_count", family.name)
        {
            return Err(format!(
                "line {n}: sample {name:?} does not belong to family {:?}",
                family.name
            ));
        }
        family.samples.push((name, label, value));
    }
    Ok(families)
}

/// Whether families appear in ascending name order — the renderer's
/// ordering contract, asserted by the property tests.
pub fn is_name_sorted(families: &[ExpoFamily]) -> bool {
    families.windows(2).all(|w| w[0].name < w[1].name)
}

/// Re-assembles the scalar metrics of parsed families into maps, for
/// tests that compare a round-trip against the source snapshot.
pub fn scalar_values(families: &[ExpoFamily]) -> BTreeMap<String, u64> {
    families
        .iter()
        .filter(|f| f.kind != ExpoKind::Histogram)
        .filter_map(|f| f.samples.first().map(|(n, _, v)| (n.clone(), *v)))
        .collect()
}

/// The cumulative `+Inf` total of a parsed histogram family, if `name`
/// is one.
pub fn histogram_total(families: &[ExpoFamily], name: &str) -> Option<u64> {
    families
        .iter()
        .find(|f| f.kind == ExpoKind::Histogram && f.name == name)
        .and_then(|f| {
            f.samples
                .iter()
                .find(|(n, le, _)| n.ends_with("_bucket") && le == "+Inf")
                .map(|(_, _, v)| *v)
        })
}

/// Reconstructs a [`HistogramSnapshot`] from a parsed histogram family
/// (de-cumulating the bucket series). `None` if `name` is not a
/// histogram family or its series is not monotone.
pub fn histogram_snapshot(families: &[ExpoFamily], name: &str) -> Option<HistogramSnapshot> {
    let family = families
        .iter()
        .find(|f| f.kind == ExpoKind::Histogram && f.name == name)?;
    let mut bounds = Vec::new();
    let mut counts = Vec::new();
    let mut prev = 0u64;
    for (sample, le, cumulative) in &family.samples {
        if !sample.ends_with("_bucket") {
            continue;
        }
        let count = cumulative.checked_sub(prev)?;
        prev = *cumulative;
        if le == "+Inf" {
            counts.push(count);
            return Some(HistogramSnapshot { bounds, counts });
        }
        bounds.push(le.parse().ok()?);
        counts.push(count);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn sanitized_names_use_the_exposition_charset() {
        assert_eq!(
            sanitize_name("serve.cache.result_hits"),
            "serve_cache_result_hits"
        );
        assert_eq!(sanitize_name("weird name-1"), "weird_name_1");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn rendering_round_trips_through_the_parser() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("serve.jobs.completed");
        reg.add(c, 7);
        let g = reg.gauge("serve.queue.depth");
        reg.set(g, 3);
        let h = reg.histogram("serve.job.run_us", &[10, 100]).unwrap();
        reg.observe(h, 5);
        reg.observe(h, 50);
        reg.observe(h, 5_000);
        let text = render_exposition(&reg.snapshot());
        let families = parse_exposition(&text).expect("rendered output parses");
        assert!(is_name_sorted(&families), "{text}");
        assert_eq!(scalar_values(&families)["serve_jobs_completed"], 7);
        assert_eq!(scalar_values(&families)["serve_queue_depth"], 3);
        assert_eq!(histogram_total(&families, "serve_job_run_us"), Some(3));
        let back = histogram_snapshot(&families, "serve_job_run_us").expect("histogram");
        assert_eq!(back.bounds, vec![10, 100]);
        assert_eq!(back.counts, vec![1, 1, 1]);
    }

    #[test]
    fn prefix_filter_keeps_matching_dotted_names_only() {
        let mut reg = MetricsRegistry::new();
        reg.counter("serve.jobs.completed");
        reg.counter("exec.retries");
        reg.gauge("serve.queue.depth");
        let text = render_exposition_filtered(&reg.snapshot(), Some("serve."));
        assert!(text.contains("serve_jobs_completed"), "{text}");
        assert!(text.contains("serve_queue_depth"), "{text}");
        assert!(!text.contains("exec_retries"), "{text}");
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_exposition("orphan 3").is_err());
        assert!(parse_exposition("# TYPE x widget\nx 1").is_err());
        assert!(parse_exposition("# TYPE x counter\nx banana").is_err());
        assert!(parse_exposition("# TYPE x counter\ny 1").is_err());
        assert!(parse_exposition("# TYPE x histogram\nx_bucket{le=\"5\" 1").is_err());
    }
}
