//! Schema validation for exported Chrome `trace_event` documents — used
//! by `vrl trace --validate` and the CI perf-smoke job.

use std::collections::BTreeSet;
use std::fmt;

use crate::json::{parse, JsonValue};

/// Summary of a structurally valid Chrome trace document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Instant events in the document (metadata records excluded).
    pub events: usize,
    /// Distinct event names observed (metadata records excluded).
    pub kinds: BTreeSet<String>,
    /// Distinct bank tracks (`tid`s of instant events).
    pub banks: BTreeSet<u64>,
    /// Ring overflow count from `otherData.dropped` (0 if absent).
    pub dropped: u64,
}

/// Why a document failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError(String);

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid Chrome trace: {}", self.0)
    }
}

impl std::error::Error for ValidateError {}

fn err(message: impl Into<String>) -> ValidateError {
    ValidateError(message.into())
}

/// Parse `json` and check the Chrome `trace_event` contract our exporter
/// promises: a top-level `traceEvents` array whose entries all carry
/// `name`/`ph`/`pid`/`tid`, with instant events (`ph == "i"`) also
/// carrying a non-negative numeric `ts`. Returns a summary of the
/// instant events.
pub fn validate_chrome_trace(json: &str) -> Result<TraceSummary, ValidateError> {
    let doc = parse(json).map_err(|e| err(e.to_string()))?;
    let events = doc
        .get("traceEvents")
        .ok_or_else(|| err("missing `traceEvents`"))?
        .as_array()
        .ok_or_else(|| err("`traceEvents` is not an array"))?;

    let mut summary = TraceSummary {
        events: 0,
        kinds: BTreeSet::new(),
        banks: BTreeSet::new(),
        dropped: 0,
    };
    let mut last_ts_per_bank: std::collections::BTreeMap<u64, f64> = Default::default();

    for (i, entry) in events.iter().enumerate() {
        let name = entry
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| err(format!("event {i}: missing string `name`")))?;
        let ph = entry
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| err(format!("event {i}: missing string `ph`")))?;
        for field in ["pid", "tid"] {
            entry
                .get(field)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| err(format!("event {i}: missing numeric `{field}`")))?;
        }
        match ph {
            "M" => continue,
            "i" => {
                let ts = entry
                    .get("ts")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| err(format!("event {i}: instant without numeric `ts`")))?;
                if ts < 0.0 {
                    return Err(err(format!("event {i}: negative `ts`")));
                }
                let bank = entry.get("tid").and_then(JsonValue::as_f64).unwrap() as u64;
                if let Some(&prev) = last_ts_per_bank.get(&bank) {
                    if ts < prev {
                        return Err(err(format!(
                            "event {i}: `ts` {ts} goes backwards on bank {bank} (prev {prev})"
                        )));
                    }
                }
                last_ts_per_bank.insert(bank, ts);
                summary.events += 1;
                summary.kinds.insert(name.to_string());
                summary.banks.insert(bank);
            }
            other => return Err(err(format!("event {i}: unsupported phase `{other}`"))),
        }
    }

    if let Some(d) = doc
        .get("otherData")
        .and_then(|o| o.get("dropped"))
        .and_then(JsonValue::as_f64)
    {
        summary.dropped = d as u64;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};
    use crate::export::chrome_trace_json;

    #[test]
    fn accepts_the_exporter_output() {
        let events = vec![
            Event {
                seq: 0,
                cycle: 1,
                bank: 0,
                row: 2,
                kind: EventKind::Activate,
            },
            Event {
                seq: 1,
                cycle: 4,
                bank: 1,
                row: 70,
                kind: EventKind::RefreshPartial,
            },
        ];
        let json = chrome_trace_json(&events, "t", "vrl", 0);
        let summary = validate_chrome_trace(&json).unwrap();
        assert_eq!(summary.events, 2);
        assert_eq!(summary.banks.len(), 2);
        assert!(summary.kinds.contains("Activate"));
        assert!(summary.kinds.contains("RefreshPartial"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":{}}").is_err());
        assert!(validate_chrome_trace(
            "{\"traceEvents\":[{\"ph\":\"i\",\"pid\":0,\"tid\":0,\"ts\":1}]}"
        )
        .is_err());
        // Out-of-order timestamps on one bank are a contract violation:
        // merged streams are sorted by cycle.
        assert!(validate_chrome_trace(
            "{\"traceEvents\":[\
             {\"name\":\"a\",\"ph\":\"i\",\"pid\":0,\"tid\":0,\"ts\":5},\
             {\"name\":\"b\",\"ph\":\"i\",\"pid\":0,\"tid\":0,\"ts\":4}]}"
        )
        .is_err());
    }
}
