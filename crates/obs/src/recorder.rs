//! The [`Recorder`]: a [`SimObserver`] that captures typed events into a
//! bounded [`EventRing`], plus the cross-worker merge rules.

use vrl_dram_sim::policy::DegradeAction;
use vrl_dram_sim::sim::SimObserver;
use vrl_dram_sim::timing::RefreshLatency;

use crate::event::{Event, EventKind};
use crate::ring::EventRing;

/// Row index used for events that have no row (queue stalls).
pub const NO_ROW: u32 = u32::MAX;

/// One worker's finished recording: the retained events plus stream
/// metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventStream {
    /// Free-form stream label (workload name, worker index, …).
    pub label: String,
    /// Refresh policy the stream was recorded under.
    pub policy: String,
    /// Retained events, in recording order.
    pub events: Vec<Event>,
    /// Events that overflowed the ring.
    pub dropped: u64,
}

/// A `SimObserver` that records every hook invocation as a typed event.
///
/// The recorder maps global row indices to banks with a fixed
/// `rows_per_bank` divisor (pass `u32::MAX` — or use
/// [`Recorder::single_bank`] — for single-bank front ends).
#[derive(Debug)]
pub struct Recorder {
    ring: EventRing,
    rows_per_bank: u32,
    label: String,
    policy: String,
}

impl Recorder {
    /// A recorder for a multi-bank front end where global row `r` lives
    /// in bank `r / rows_per_bank`.
    pub fn new(label: &str, policy: &str, rows_per_bank: u32) -> Self {
        Recorder {
            ring: EventRing::default(),
            rows_per_bank: rows_per_bank.max(1),
            label: label.to_string(),
            policy: policy.to_string(),
        }
    }

    /// A recorder for a single-bank front end (every event lands in
    /// bank 0).
    pub fn single_bank(label: &str, policy: &str) -> Self {
        Recorder::new(label, policy, u32::MAX)
    }

    /// Replace the default ring with one of the given capacity.
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring = EventRing::with_capacity(capacity);
        self
    }

    fn bank_of(&self, row: u32) -> u32 {
        if row == NO_ROW {
            0
        } else {
            row / self.rows_per_bank
        }
    }

    fn record(&mut self, cycle: u64, row: u32, kind: EventKind) {
        let bank = self.bank_of(row);
        self.ring.push(cycle, bank, row, kind);
    }

    /// Events recorded so far (retained prefix only).
    pub fn events(&self) -> &[Event] {
        self.ring.events()
    }

    /// Events that overflowed the ring so far.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Serialize the mutable recording state (the ring). The label,
    /// policy, and bank geometry are construction parameters and are
    /// expected to be rebuilt from the run configuration on resume.
    pub fn save_state(&self, enc: &mut vrl_snap::Encoder) {
        use vrl_snap::Snapshot as _;
        self.ring.save(enc);
    }

    /// Restore the recording state captured by [`Recorder::save_state`]
    /// into this (freshly constructed) recorder.
    pub fn restore_state(
        &mut self,
        dec: &mut vrl_snap::Decoder<'_>,
    ) -> Result<(), vrl_snap::SnapError> {
        use vrl_snap::Snapshot as _;
        self.ring = EventRing::load(dec)?;
        Ok(())
    }

    /// Finish recording and package the stream.
    pub fn finish(self) -> EventStream {
        let dropped = self.ring.dropped();
        EventStream {
            label: self.label,
            policy: self.policy,
            events: self.ring.into_events(),
            dropped,
        }
    }
}

impl SimObserver for Recorder {
    fn on_refresh(&mut self, row: u32, kind: RefreshLatency, cycle: u64) {
        self.record(cycle, row, EventKind::refresh(kind));
    }

    fn on_activate(&mut self, row: u32, cycle: u64) {
        self.record(cycle, row, EventKind::Activate);
    }

    fn on_refresh_postponed(&mut self, row: u32, cycle: u64) {
        self.record(cycle, row, EventKind::RefreshPostponed);
    }

    fn on_refresh_pull_in(&mut self, row: u32, cycle: u64) {
        self.record(cycle, row, EventKind::RefreshPullIn);
    }

    fn on_scrub(&mut self, row: u32, cycle: u64) {
        self.record(cycle, row, EventKind::GuardScrub);
    }

    fn on_degrade(&mut self, row: u32, action: DegradeAction, cycle: u64) {
        self.record(cycle, row, EventKind::GuardDegrade(action.into()));
    }

    fn on_refresh_fault(&mut self, row: u32, dropped: bool, cycle: u64) {
        self.record(cycle, row, EventKind::FaultInjected { dropped });
    }

    fn on_queue_stall(&mut self, cycle: u64, depth: usize) {
        self.record(
            cycle,
            NO_ROW,
            EventKind::QueueStall {
                depth: depth.min(u32::MAX as usize) as u32,
            },
        );
    }
}

/// Merge per-worker streams into one deterministic stream.
///
/// Events are concatenated in stream order, then stably sorted by
/// [`Event::merge_key`] — `(cycle, bank, seq)`. Because each worker's
/// `seq` is gap-free and per-bank events come from exactly one worker in
/// the repo's experiment engine, the merged order is independent of how
/// jobs were packed onto workers.
pub fn merge_streams(streams: &[EventStream]) -> Vec<Event> {
    let mut merged: Vec<Event> = streams
        .iter()
        .flat_map(|s| s.events.iter().copied())
        .collect();
    merged.sort_by_key(Event::merge_key);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_maps_rows_to_banks() {
        let mut rec = Recorder::new("t", "vrl", 64);
        rec.on_activate(10, 5);
        rec.on_activate(70, 6);
        rec.on_queue_stall(7, 3);
        let events = rec.events();
        assert_eq!(events[0].bank, 0);
        assert_eq!(events[1].bank, 1);
        assert_eq!(events[2].bank, 0);
        assert_eq!(events[2].row, NO_ROW);
        assert_eq!(events[2].kind, EventKind::QueueStall { depth: 3 });
    }

    #[test]
    fn merge_orders_by_cycle_then_bank_then_seq() {
        let mut a = Recorder::new("a", "vrl", 64);
        a.on_activate(0, 100);
        a.on_refresh(1, RefreshLatency::Full, 50);
        let mut b = Recorder::new("b", "vrl", 64);
        b.on_activate(64, 50);
        let merged = merge_streams(&[a.finish(), b.finish()]);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].cycle, 50);
        assert_eq!(merged[0].bank, 0);
        assert_eq!(merged[1].cycle, 50);
        assert_eq!(merged[1].bank, 1);
        assert_eq!(merged[2].cycle, 100);
    }
}
