//! Phase profiling: span timers that accumulate wall time (and optional
//! simulated-cycle spans) per named simulator phase.

use std::time::{Duration, Instant};

/// Accumulated totals for one phase.
#[derive(Debug, Clone, Default)]
pub struct PhaseTotals {
    /// Number of spans recorded.
    pub spans: u64,
    /// Total wall time spent in the phase.
    pub wall: Duration,
    /// Total simulated cycles attributed to the phase (0 unless the
    /// caller reports them via [`PhaseProfiler::add_cycles`]).
    pub cycles: u64,
}

/// Collects per-phase wall/cycle breakdowns via RAII span guards.
///
/// ```
/// use vrl_obs::profile::PhaseProfiler;
/// let mut prof = PhaseProfiler::new();
/// {
///     let _span = prof.span("drain_refreshes");
///     // ... phase work ...
/// }
/// assert_eq!(prof.totals("drain_refreshes").unwrap().spans, 1);
/// ```
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    phases: Vec<(String, PhaseTotals)>,
}

impl PhaseProfiler {
    /// An empty profiler.
    pub fn new() -> Self {
        PhaseProfiler::default()
    }

    fn slot(&mut self, phase: &str) -> usize {
        if let Some(i) = self.phases.iter().position(|(n, _)| n == phase) {
            return i;
        }
        self.phases
            .push((phase.to_string(), PhaseTotals::default()));
        self.phases.len() - 1
    }

    /// Start a span for `phase`; the elapsed wall time is added when the
    /// returned guard drops.
    pub fn span(&mut self, phase: &str) -> SpanGuard<'_> {
        let slot = self.slot(phase);
        SpanGuard {
            profiler: self,
            slot,
            start: Instant::now(),
        }
    }

    /// Attribute `cycles` simulated cycles to `phase`.
    pub fn add_cycles(&mut self, phase: &str, cycles: u64) {
        let slot = self.slot(phase);
        self.phases[slot].1.cycles += cycles;
    }

    /// Totals for one phase, if it was ever recorded.
    pub fn totals(&self, phase: &str) -> Option<&PhaseTotals> {
        self.phases.iter().find(|(n, _)| n == phase).map(|(_, t)| t)
    }

    /// All phases in first-recorded order.
    pub fn phases(&self) -> impl Iterator<Item = (&str, &PhaseTotals)> {
        self.phases.iter().map(|(n, t)| (n.as_str(), t))
    }

    /// Render the breakdown as a flat JSON object keyed by phase, with
    /// wall time in microseconds.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"vrl-profile-v1\",\"phases\":{");
        let mut first = true;
        for (name, t) in &self.phases {
            if !first {
                out.push(',');
            }
            first = false;
            serde::write_json_string(name, &mut out);
            out.push_str(&format!(
                ":{{\"spans\":{},\"wall_us\":{},\"cycles\":{}}}",
                t.spans,
                t.wall.as_micros(),
                t.cycles
            ));
        }
        out.push_str("}}");
        out
    }
}

/// RAII guard returned by [`PhaseProfiler::span`].
#[derive(Debug)]
pub struct SpanGuard<'a> {
    profiler: &'a mut PhaseProfiler,
    slot: usize,
    start: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let totals = &mut self.profiler.phases[self.slot].1;
        totals.spans += 1;
        totals.wall += self.start.elapsed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_per_phase() {
        let mut prof = PhaseProfiler::new();
        for _ in 0..3 {
            let _s = prof.span("access");
        }
        {
            let _s = prof.span("refresh");
        }
        prof.add_cycles("refresh", 128);
        assert_eq!(prof.totals("access").unwrap().spans, 3);
        let refresh = prof.totals("refresh").unwrap();
        assert_eq!(refresh.spans, 1);
        assert_eq!(refresh.cycles, 128);
        assert!(prof.totals("missing").is_none());
        let json = prof.to_json();
        assert!(json.contains("\"refresh\":{\"spans\":1"), "{json}");
    }
}
