//! Trace determinism: recorded event streams are a function of the
//! simulation inputs alone, never of how jobs were packed onto the
//! worker pool — same seed and pool shape give byte-identical merged
//! streams, and *any* pool shape gives identical per-bank streams once
//! merged by the stable `(cycle, bank, seq)` key.

use vrl_dram_sim::AutoRefresh;
use vrl_exec::{map_ordered, ExecConfig};
use vrl_obs::recorder::{merge_streams, EventStream, Recorder};
use vrl_obs::EventKind;
use vrl_sched::{SchedConfig, Scheduler};
use vrl_trace::{Workload, WorkloadSpec};

const ROWS: u32 = 256;
const BANKS: u32 = 4;
const DURATION_MS: f64 = 64.0;

/// One traced scheduler run: a deterministic workload with `seed`,
/// recorded bank-by-bank.
fn traced_run(seed: u64) -> Result<EventStream, String> {
    let config = SchedConfig::with_geometry(BANKS, ROWS / BANKS).map_err(|e| e.to_string())?;
    let spec = WorkloadSpec::parsec("ferret").ok_or("known benchmark")?;
    let workload = Workload::new(spec, ROWS, seed);
    let mut recorder = Recorder::new(
        &format!("seed-{seed}"),
        "vrl-access",
        config.rows_per_bank(),
    );
    Scheduler::new(config, AutoRefresh::new(64.0))
        .map_err(|e| e.to_string())?
        .run_observed(workload.records(DURATION_MS), DURATION_MS, &mut recorder)
        .map_err(|e| e.to_string())?;
    Ok(recorder.finish())
}

fn fan_out(workers: usize) -> Vec<EventStream> {
    let seeds: Vec<u64> = (1..=6).collect();
    map_ordered(&ExecConfig::new(workers), &seeds, |_, &seed| {
        traced_run(seed)
    })
    .expect("all jobs succeed")
}

#[test]
fn same_seed_and_pool_shape_give_identical_merged_streams() {
    let first = merge_streams(&fan_out(3));
    let second = merge_streams(&fan_out(3));
    assert!(!first.is_empty());
    assert_eq!(first, second, "re-running must reproduce the exact stream");
}

#[test]
fn merged_streams_are_independent_of_pool_shape() {
    let reference = merge_streams(&fan_out(1));
    assert!(!reference.is_empty());
    // The streams exercise the event vocabulary, not just activations.
    let distinct: std::collections::BTreeSet<&'static str> =
        reference.iter().map(|ev| ev.kind.name()).collect();
    assert!(distinct.len() >= 2, "kinds: {distinct:?}");
    for workers in [2, 3, 6] {
        let merged = merge_streams(&fan_out(workers));
        assert_eq!(
            merged, reference,
            "{workers}-worker pool produced a different merged stream"
        );
    }
}

#[test]
fn per_bank_streams_survive_the_stable_merge() {
    // After the stable (cycle, bank, seq) sort, the per-bank
    // subsequences of the merged stream equal each source stream's own
    // per-bank order — the merge reorders *across* banks only.
    let streams = fan_out(2);
    let merged = merge_streams(&streams);
    for bank in 0..BANKS {
        let from_merge: Vec<_> = merged
            .iter()
            .filter(|ev| ev.bank == bank)
            .copied()
            .collect();
        let mut from_sources: Vec<_> = streams
            .iter()
            .flat_map(|s| s.events.iter().filter(|ev| ev.bank == bank).copied())
            .collect();
        from_sources.sort_by_key(|ev| ev.merge_key());
        assert_eq!(from_merge, from_sources, "bank {bank} diverged");
        assert!(
            from_merge.windows(2).all(|w| w[0].cycle <= w[1].cycle),
            "bank {bank} is not in cycle order"
        );
    }
}

#[test]
fn recorded_streams_carry_refresh_detail() {
    let stream = traced_run(7).expect("runs");
    assert_eq!(stream.dropped, 0, "this workload fits the default ring");
    assert!(stream
        .events
        .iter()
        .any(|ev| ev.kind == EventKind::Activate));
    assert!(stream
        .events
        .iter()
        .any(|ev| matches!(ev.kind, EventKind::RefreshFull | EventKind::RefreshPartial)));
    // Every bank track sees traffic under the default address map.
    let banks: std::collections::BTreeSet<u32> = stream.events.iter().map(|ev| ev.bank).collect();
    assert_eq!(banks.len() as u32, BANKS);
}
