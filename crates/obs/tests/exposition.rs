//! Exposition-format contract tests: the renderer's byte-level output
//! is pinned against a fixed snapshot, property-tested for
//! parseability and ordering on arbitrary snapshots, and the quantile
//! estimator is checked against hand-computed ranks.

use std::collections::BTreeMap;

use proptest::prelude::*;

use vrl_obs::{
    histogram_snapshot, histogram_total, is_name_sorted, parse_exposition, render_exposition,
    scalar_values, HistogramSnapshot, MetricsSnapshot,
};

/// Builds the fixed snapshot the byte-exact test pins: one counter,
/// one gauge, one histogram, with names that exercise sanitization.
fn fixed_snapshot() -> MetricsSnapshot {
    let mut counters = BTreeMap::new();
    counters.insert("serve.jobs.completed".to_string(), 7u64);
    let mut gauges = BTreeMap::new();
    gauges.insert("serve.queue.depth".to_string(), 3u64);
    let mut histograms = BTreeMap::new();
    histograms.insert(
        "serve.job.run_us".to_string(),
        HistogramSnapshot {
            bounds: vec![10, 100, 1_000],
            counts: vec![2, 1, 0, 4],
        },
    );
    MetricsSnapshot {
        counters,
        gauges,
        histograms,
    }
}

#[test]
fn fixed_snapshot_renders_byte_exactly() {
    // Families in sanitized-name order (job < jobs < queue), histogram
    // buckets cumulative with a final +Inf and _count, no _sum.
    let expected = "\
# TYPE serve_job_run_us histogram
serve_job_run_us_bucket{le=\"10\"} 2
serve_job_run_us_bucket{le=\"100\"} 3
serve_job_run_us_bucket{le=\"1000\"} 3
serve_job_run_us_bucket{le=\"+Inf\"} 7
serve_job_run_us_count 7
# TYPE serve_jobs_completed counter
serve_jobs_completed 7
# TYPE serve_queue_depth gauge
serve_queue_depth 3
";
    assert_eq!(render_exposition(&fixed_snapshot()), expected);
}

#[test]
fn rendering_is_deterministic_across_scrapes() {
    let snapshot = fixed_snapshot();
    assert_eq!(render_exposition(&snapshot), render_exposition(&snapshot));
}

#[test]
fn quantiles_match_hand_computed_ranks() {
    // 10 observations: ranks 1-2 in le=10, rank 3 in le=100, ranks
    // 4-8 in le=1000, ranks 9-10 in overflow (reported as the last
    // finite bound, 1000).
    let hist = HistogramSnapshot {
        bounds: vec![10, 100, 1_000],
        counts: vec![2, 1, 5, 2],
    };
    assert_eq!(hist.total(), 10);
    assert_eq!(hist.quantile(0.0), 10); // rank clamps to 1
    assert_eq!(hist.quantile(0.2), 10); // rank 2
    assert_eq!(hist.quantile(0.3), 100); // rank 3
    assert_eq!(hist.quantile(0.5), 1_000); // rank 5
    assert_eq!(hist.quantile(0.8), 1_000); // rank 8
    assert_eq!(hist.quantile(0.9), 1_000); // rank 9: overflow bucket
    assert_eq!(hist.quantile(1.0), 1_000); // rank 10: overflow bucket
    let empty = HistogramSnapshot {
        bounds: vec![10],
        counts: vec![0, 0],
    };
    assert_eq!(empty.quantile(0.5), 0);
}

/// Builds a histogram from 7 raw words: the first 3 become strictly
/// increasing bounds (running sum of `word + 1`), the last 4 the
/// per-bucket counts.
fn build_histogram(chunk: &[u64]) -> HistogramSnapshot {
    let mut bounds = Vec::with_capacity(3);
    let mut acc = 0u64;
    for b in &chunk[..3] {
        acc += b + 1;
        bounds.push(acc);
    }
    HistogramSnapshot {
        bounds,
        counts: chunk[3..7].to_vec(),
    }
}

/// Builds a snapshot from primitive samples (the vendored proptest
/// subset has no map/string strategies). Generated names survive
/// sanitization unchanged and cannot collide across kinds (distinct
/// `c_`/`g_`/`h_` prefixes), so the strict ordering contract is
/// checkable.
fn build_snapshot(counter_vals: &[u64], gauge_vals: &[u64], hist_words: &[u64]) -> MetricsSnapshot {
    let mut snapshot = MetricsSnapshot::default();
    for (i, v) in counter_vals.iter().enumerate() {
        snapshot.counters.insert(format!("c_metric{i:02}"), *v);
    }
    for (i, v) in gauge_vals.iter().enumerate() {
        snapshot.gauges.insert(format!("g_metric{i:02}"), *v);
    }
    for (i, chunk) in hist_words.chunks_exact(7).enumerate() {
        snapshot
            .histograms
            .insert(format!("h_metric{i:02}"), build_histogram(chunk));
    }
    snapshot
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rendered_output_parses_and_is_name_sorted(
        counter_vals in prop::collection::vec(0u64..u64::MAX / 2, 0..8),
        gauge_vals in prop::collection::vec(0u64..u64::MAX / 2, 0..8),
        hist_words in prop::collection::vec(0u64..1_000, 0..29),
    ) {
        let snapshot = build_snapshot(&counter_vals, &gauge_vals, &hist_words);
        let text = render_exposition(&snapshot);
        let families = parse_exposition(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n---\n{text}")))?;
        prop_assert!(is_name_sorted(&families), "unsorted families:\n{text}");
        prop_assert_eq!(
            families.len(),
            snapshot.counters.len() + snapshot.gauges.len() + snapshot.histograms.len()
        );

        // Scalars round-trip exactly (names are already sanitized).
        let scalars = scalar_values(&families);
        for (name, value) in snapshot.counters.iter().chain(&snapshot.gauges) {
            prop_assert_eq!(scalars.get(name).copied(), Some(*value), "scalar {}", name);
        }
        // Histograms de-cumulate back to the source buckets.
        for (name, hist) in &snapshot.histograms {
            prop_assert_eq!(histogram_total(&families, name), Some(hist.total()));
            let back = histogram_snapshot(&families, name);
            prop_assert_eq!(back.as_ref(), Some(hist), "histogram {}", name);
        }
    }

    #[test]
    fn double_render_is_byte_identical(
        counter_vals in prop::collection::vec(0u64..u64::MAX / 2, 0..8),
        gauge_vals in prop::collection::vec(0u64..u64::MAX / 2, 0..8),
        hist_words in prop::collection::vec(0u64..1_000, 0..29),
    ) {
        let snapshot = build_snapshot(&counter_vals, &gauge_vals, &hist_words);
        prop_assert_eq!(render_exposition(&snapshot), render_exposition(&snapshot));
    }

    #[test]
    fn quantile_never_exceeds_the_last_finite_bound(
        hist_words in prop::collection::vec(0u64..1_000, 7..8),
        q in 0.0f64..1.0
    ) {
        let hist = build_histogram(&hist_words);
        let value = hist.quantile(q);
        let last = hist.bounds.last().copied().unwrap_or(0);
        prop_assert!(value <= last, "quantile {value} above last bound {last}");
        if hist.total() > 0 {
            // The estimate is always one of the bucket bounds.
            prop_assert!(hist.bounds.contains(&value));
        }
    }
}
