//! Cross-crate tests of the parallel execution engine: the determinism
//! contract (parallel bit-identical to serial), error propagation, and
//! the throughput meter's accounting.

use vrl::core::experiment::{Experiment, ExperimentConfig, PolicyKind};
use vrl::core::Error;
use vrl::dram::stats::SimStats;
use vrl::exec::{map_ordered, ExecConfig, ExecError};

fn experiment(seed: u64) -> Experiment {
    Experiment::new(ExperimentConfig {
        rows: 192,
        duration_ms: 96.0,
        seed,
        ..Default::default()
    })
}

/// The contract the whole harness rests on: fanning the (benchmark ×
/// policy) matrix across workers changes wall-clock time only — every
/// statistic, for every workload, is bit-identical to the serial path.
#[test]
fn parallel_compare_all_is_bit_identical_to_serial() {
    for seed in [42u64, 7, 1234] {
        let experiment = experiment(seed);
        let serial = experiment.compare_all_serial().expect("serial path");
        assert_eq!(serial.len(), vrl::trace::WorkloadSpec::BENCHMARKS.len());
        for workers in [2usize, 5] {
            let parallel = experiment
                .compare_all_with(&ExecConfig::new(workers))
                .expect("parallel path");
            assert_eq!(serial, parallel, "seed {seed}, {workers} workers");
        }
    }
}

/// The matrix primitive agrees with itself across pool shapes, including
/// chunked claiming.
#[test]
fn matrix_is_stable_across_pool_shapes() {
    let experiment = experiment(42);
    let policies = [PolicyKind::Raidr, PolicyKind::VrlAccess];
    let serial = experiment.run_matrix_serial(&policies).expect("serial");
    for cfg in [
        ExecConfig::new(3),
        ExecConfig::new(4).with_chunk(5),
        ExecConfig::new(16),
    ] {
        let (cells, report) = experiment.run_matrix_with(&cfg, &policies).expect("matrix");
        assert_eq!(cells, serial);
        assert_eq!(report.jobs, cells.len());
        assert!(report.workers <= cells.len());
    }
}

/// Worker failures surface as typed errors, not truncated results: a
/// panic in one job becomes `Error::WorkerPanic` with that job's index.
#[test]
fn worker_panics_convert_to_typed_errors() {
    let items: Vec<u32> = (0..12).collect();
    let err = map_ordered(&ExecConfig::new(3), &items, |idx, &x| {
        if x == 5 {
            panic!("injected failure");
        }
        Ok::<_, Error>(idx)
    })
    .unwrap_err();
    let converted: Error = err.into();
    match converted {
        Error::WorkerPanic { job, ref message } => {
            assert_eq!(job, 5);
            assert!(message.contains("injected failure"), "{message}");
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
}

/// Job errors keep their domain type through the pool and the `From`
/// conversion, and the lowest job index wins deterministically.
#[test]
fn job_errors_keep_their_domain_type() {
    let items: Vec<usize> = (0..8).collect();
    let err = map_ordered(&ExecConfig::new(4), &items, |_, &x| {
        if x >= 3 {
            Err(Error::UnknownWorkload {
                requested: format!("job-{x}"),
                known: vec![],
            })
        } else {
            Ok(x)
        }
    })
    .unwrap_err();
    assert!(matches!(err, ExecError::Job { job: 3, .. }), "{err:?}");
    let converted: Error = err.into();
    assert!(
        matches!(&converted, Error::UnknownWorkload { requested, .. } if requested == "job-3"),
        "{converted:?}"
    );
}

/// The throughput meter's accumulation is exact: totals over matrix
/// cells equal the per-cell sums, and rates scale with wall time.
#[test]
fn throughput_accounting_is_exact() {
    let experiment = experiment(7);
    let policies = [PolicyKind::Vrl];
    let (cells, _) = experiment
        .run_matrix_with(&ExecConfig::new(2), &policies)
        .expect("matrix");
    let mut total = SimStats::default();
    for cell in &cells {
        total.accumulate(&cell.stats);
    }
    let cycle_sum: u64 = cells.iter().map(|c| c.stats.total_cycles).sum();
    assert_eq!(total.total_cycles, cycle_sum);
    let events_sum: u64 = cells.iter().map(|c| c.stats.events()).sum();
    assert_eq!(total.events(), events_sum);
    let tp = total.throughput(2.0);
    assert_eq!(tp.sim_cycles_per_sec, cycle_sum as f64 / 2.0);
    assert_eq!(tp.events_per_sec, events_sum as f64 / 2.0);
}
