//! End-to-end integration: trace generation → plan → simulator →
//! statistics → power, across every crate in the workspace.

use vrl::core::experiment::{Experiment, ExperimentConfig, PolicyKind};
use vrl::core::overhead;

fn experiment() -> Experiment {
    Experiment::new(ExperimentConfig {
        rows: 1024,
        duration_ms: 1024.0,
        ..Default::default()
    })
}

#[test]
fn policy_ordering_holds_end_to_end() {
    let e = experiment();
    let auto = e.run_policy(PolicyKind::Auto, "canneal").expect("known");
    let raidr = e.run_policy(PolicyKind::Raidr, "canneal").expect("known");
    let vrl = e.run_policy(PolicyKind::Vrl, "canneal").expect("known");
    let vrl_access = e
        .run_policy(PolicyKind::VrlAccess, "canneal")
        .expect("known");
    assert!(
        raidr.refresh_busy_cycles < auto.refresh_busy_cycles,
        "RAIDR < auto"
    );
    assert!(
        vrl.refresh_busy_cycles < raidr.refresh_busy_cycles,
        "VRL < RAIDR"
    );
    assert!(
        vrl_access.refresh_busy_cycles <= vrl.refresh_busy_cycles,
        "VRL-Access <= VRL"
    );
}

#[test]
fn all_policies_are_integrity_safe_under_traffic() {
    let e = experiment();
    for kind in [PolicyKind::Raidr, PolicyKind::Vrl, PolicyKind::VrlAccess] {
        let (_, violations) = e.run_checked(kind, "streamcluster").expect("known");
        assert_eq!(violations, 0, "{} violated data integrity", kind.name());
    }
}

#[test]
fn simulator_matches_closed_form_accounting() {
    // The simulator (with no trace) must agree with the closed-form
    // overhead model within the staggered-start transient.
    let e = Experiment::new(ExperimentConfig {
        rows: 1024,
        duration_ms: 4096.0,
        ..Default::default()
    });
    let raidr_sim = e
        .run_policy_with(
            PolicyKind::Raidr,
            std::iter::empty(),
            &mut vrl::dram::sim::NullObserver,
        )
        .refresh_busy_cycles as f64;
    let raidr_model = overhead::raidr_cycles(e.plan(), 4096.0, 19);
    let rel = (raidr_sim - raidr_model).abs() / raidr_model;
    assert!(
        rel < 0.02,
        "simulator {raidr_sim} vs model {raidr_model} ({rel:.3})"
    );

    let vrl_sim = e
        .run_policy_with(
            PolicyKind::Vrl,
            std::iter::empty(),
            &mut vrl::dram::sim::NullObserver,
        )
        .refresh_busy_cycles as f64;
    let vrl_model = overhead::vrl_cycles(e.plan(), 4096.0, 19, 11);
    let rel = (vrl_sim - vrl_model).abs() / vrl_model;
    // VRL has a partial-heavy transient (counters start at 0).
    assert!(
        rel < 0.05,
        "simulator {vrl_sim} vs model {vrl_model} ({rel:.3})"
    );
}

#[test]
fn vrl_is_application_independent_but_vrl_access_is_not() {
    let e = experiment();
    let vrl_a = e.run_policy(PolicyKind::Vrl, "swaptions").expect("known");
    let vrl_b = e.run_policy(PolicyKind::Vrl, "bgsave").expect("known");
    assert_eq!(
        vrl_a.refresh_busy_cycles, vrl_b.refresh_busy_cycles,
        "plain VRL must not depend on the trace"
    );
    let va_a = e
        .run_policy(PolicyKind::VrlAccess, "swaptions")
        .expect("known");
    let va_b = e
        .run_policy(PolicyKind::VrlAccess, "bgsave")
        .expect("known");
    assert!(
        va_b.refresh_busy_cycles < va_a.refresh_busy_cycles,
        "bgsave's full-bank sweep must help VRL-Access more than swaptions"
    );
}

#[test]
fn refresh_power_ordering_matches_cycle_ordering() {
    let e = experiment();
    let power = *e.power();
    let raidr = power.breakdown(&e.run_policy(PolicyKind::Raidr, "vips").expect("known"));
    let vrl = power.breakdown(&e.run_policy(PolicyKind::Vrl, "vips").expect("known"));
    let va = power.breakdown(&e.run_policy(PolicyKind::VrlAccess, "vips").expect("known"));
    assert!(vrl.refresh_mw < raidr.refresh_mw);
    assert!(va.refresh_mw <= vrl.refresh_mw);
    // Energy saving is smaller than the cycle saving (fixed charge term).
    let cycle_saving = 1.0
        - e.run_policy(PolicyKind::Vrl, "vips")
            .expect("known")
            .refresh_busy_cycles as f64
            / e.run_policy(PolicyKind::Raidr, "vips")
                .expect("known")
                .refresh_busy_cycles as f64;
    let energy_saving = 1.0 - vrl.refresh_mw / raidr.refresh_mw;
    assert!(
        energy_saving < cycle_saving,
        "{energy_saving} vs {cycle_saving}"
    );
}

#[test]
fn headline_vrl_reduction_is_near_the_papers() {
    // The paper's Figure 4: VRL reduces refresh overhead by 23% vs
    // RAIDR, independent of the application. Allow a band for the
    // synthetic profile.
    let e = Experiment::new(ExperimentConfig {
        rows: 4096,
        duration_ms: 2048.0,
        ..Default::default()
    });
    let row = e.compare("blackscholes").expect("known");
    let reduction = (1.0 - row.vrl_normalized) * 100.0;
    assert!(
        (17.0..=30.0).contains(&reduction),
        "VRL reduction {reduction:.1}% out of the paper's band (23%)"
    );
}
