//! Robustness: the headline results must not depend on the particular
//! random profile or trace seed.

use vrl::circuit::model::AnalyticalModel;
use vrl::circuit::tech::Technology;
use vrl::core::experiment::{Experiment, ExperimentConfig};
use vrl::core::overhead::vrl_normalized;
use vrl::core::plan::RefreshPlan;
use vrl::retention::distribution::RetentionDistribution;
use vrl::retention::profile::BankProfile;

#[test]
fn vrl_benefit_is_stable_across_profile_seeds() {
    let model = AnalyticalModel::new(Technology::n90());
    let mut ratios = Vec::new();
    for seed in [1, 7, 42, 1234, 99999] {
        let profile = BankProfile::generate(&RetentionDistribution::liu_et_al(), 4096, 32, seed);
        let plan = RefreshPlan::build(&model, &profile, 2, 0.0);
        ratios.push(vrl_normalized(&plan, 19, 11));
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    for r in &ratios {
        assert!(
            (r - mean).abs() < 0.02,
            "seed-to-seed spread too large: {ratios:?}"
        );
    }
    // And the mean sits in the paper's band.
    assert!((0.70..=0.83).contains(&mean), "mean ratio {mean}");
}

#[test]
fn vrl_access_ordering_is_stable_across_trace_seeds() {
    for seed in [3, 17, 2024] {
        let e = Experiment::new(ExperimentConfig {
            rows: 1024,
            duration_ms: 1024.0,
            seed,
            ..Default::default()
        });
        let row = e.compare("streamcluster").expect("known");
        assert!(row.vrl_normalized < 1.0, "seed {seed}: {row:?}");
        assert!(
            row.vrl_access_normalized <= row.vrl_normalized + 1e-9,
            "seed {seed}"
        );
    }
}

#[test]
fn bigger_banks_converge_to_the_analytic_ratio() {
    // Sampling noise shrinks with bank size; the simulated ratio must
    // approach the closed-form one.
    let model = AnalyticalModel::new(Technology::n90());
    let dist = RetentionDistribution::liu_et_al();
    let deviation = |rows: usize| {
        let mut worst: f64 = 0.0;
        for seed in [5, 6] {
            let profile = BankProfile::generate(&dist, rows, 32, seed);
            let plan = RefreshPlan::build(&model, &profile, 2, 0.0);
            let r = vrl_normalized(&plan, 19, 11);
            let profile_big = BankProfile::generate(&dist, rows, 32, seed + 100);
            let plan_big = RefreshPlan::build(&model, &profile_big, 2, 0.0);
            worst = worst.max((r - vrl_normalized(&plan_big, 19, 11)).abs());
        }
        worst
    };
    let small = deviation(256);
    let large = deviation(8192);
    assert!(
        large < small + 0.01,
        "seed sensitivity should shrink with size: {small} vs {large}"
    );
}
