//! Supervised execution contract: injected worker panics are retried
//! with recorded backoffs and quarantined with typed errors while their
//! siblings complete; typed job errors quarantine immediately; the
//! whole supervision record surfaces as typed observability events and
//! `exec.*` counters, bit-identical across pool shapes.

use std::sync::atomic::{AtomicU32, Ordering};

use vrl_dram::experiment::{Experiment, ExperimentConfig, PolicyKind};
use vrl_dram::supervise::{supervisor_events_to_obs, supervisor_metrics};
use vrl_dram::Error;
use vrl_exec::{map_supervised, ExecConfig, ExecError, Supervisor};
use vrl_obs::EventKind;

fn experiment() -> Experiment {
    Experiment::new(ExperimentConfig {
        rows: 256,
        duration_ms: 32.0,
        ..Default::default()
    })
}

#[test]
fn injected_panics_are_quarantined_with_typed_events() {
    // Job 2 panics on every attempt; job 4 panics once then succeeds.
    let flaky_attempts = AtomicU32::new(0);
    let sup = Supervisor {
        max_retries: 2,
        ..Supervisor::new()
    };
    let batch = map_supervised(
        &ExecConfig::new(2),
        &sup,
        &[0u32, 1, 2, 3, 4, 5],
        |_, &item| -> Result<u32, String> {
            if item == 2 {
                panic!("injected persistent fault");
            }
            if item == 4 && flaky_attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("injected transient fault");
            }
            Ok(item * 10)
        },
    );

    // Siblings complete with real results.
    for (idx, expected) in [(0usize, 0u32), (1, 10), (3, 30), (5, 50)] {
        assert_eq!(
            batch.results[idx].as_ref().expect("sibling completes"),
            &expected
        );
    }
    // The persistent fault exhausted its retries and was quarantined as
    // a typed panic error.
    let quarantined = batch.results[2].as_ref().expect_err("job 2 quarantined");
    assert_eq!(quarantined.job, 2);
    assert_eq!(quarantined.attempts, 1 + sup.max_retries);
    assert!(matches!(quarantined.error, ExecError::Panic { job: 2, .. }));
    // The transient fault recovered.
    assert_eq!(batch.results[4].as_ref().expect("job 4 recovers"), &40);

    assert_eq!(batch.counters.retries, u64::from(sup.max_retries) + 1);
    assert_eq!(batch.counters.quarantined, 1);
    assert!(batch.counters.panics >= 3);

    // The supervision log maps 1:1 onto typed observability events,
    // with the job index in the cycle slot.
    let events = supervisor_events_to_obs(&batch.events);
    assert_eq!(events.len(), batch.events.len());
    let retries: Vec<u64> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::ExecRetry { .. }))
        .map(|e| e.cycle)
        .collect();
    assert_eq!(retries, [2, 2, 4], "retry events carry their job index");
    assert!(events.iter().any(|e| matches!(
        e.kind,
        EventKind::ExecQuarantine {
            attempts: 3,
            panicked: true
        }
    ) && e.cycle == 2));

    // Counters surface as exec.* metrics.
    let metrics = supervisor_metrics(&batch.counters);
    assert_eq!(metrics.counter("exec.retries"), batch.counters.retries);
    assert_eq!(metrics.counter("exec.quarantined"), 1);
    assert_eq!(metrics.counter("exec.degraded"), 0);
}

#[test]
fn unknown_benchmark_is_quarantined_while_siblings_complete() {
    let exp = experiment();
    let jobs = vec![
        ("swaptions".to_owned(), PolicyKind::Vrl),
        ("no-such-benchmark".to_owned(), PolicyKind::Vrl),
        ("ferret".to_owned(), PolicyKind::Raidr),
    ];
    let sup = Supervisor::new();
    let matrix = exp.run_jobs_supervised(&ExecConfig::new(2), &sup, &jobs);

    assert_eq!(matrix.cells.len(), 3);
    let good = matrix.cells[0].as_ref().expect("swaptions completes");
    assert_eq!(good.benchmark, "swaptions");
    assert_eq!(good.policy, PolicyKind::Vrl);
    assert!(matrix.cells[2].is_ok(), "ferret completes");

    // The unknown benchmark is a deterministic typed error: quarantined
    // on its first attempt, never retried.
    let bad = matrix.cells[1].as_ref().expect_err("unknown benchmark");
    assert_eq!(bad.job, 1);
    assert_eq!(bad.attempts, 1);
    assert!(matches!(
        &bad.error,
        ExecError::Job {
            job: 1,
            error: Error::UnknownWorkload { requested, .. },
        } if requested == "no-such-benchmark"
    ));

    assert_eq!(matrix.counters.retries, 0);
    assert_eq!(matrix.counters.quarantined, 1);
    assert!(!matrix.degraded);
    assert_eq!(matrix.metrics.counter("exec.quarantined"), 1);
    assert!(matrix.events.iter().any(|e| matches!(
        e.kind,
        EventKind::ExecQuarantine {
            attempts: 1,
            panicked: false
        }
    ) && e.cycle == 1));
}

#[test]
fn supervised_matrix_is_bit_identical_across_pool_shapes() {
    let exp = experiment();
    let sup = Supervisor::new();
    let policies = [PolicyKind::Raidr, PolicyKind::Vrl];
    let serial = exp.run_matrix_supervised(&ExecConfig::new(1), &sup, &policies);
    let pooled = exp.run_matrix_supervised(&ExecConfig::new(4), &sup, &policies);

    assert_eq!(serial.cells.len(), pooled.cells.len());
    for (a, b) in serial.cells.iter().zip(&pooled.cells) {
        let (a, b) = (a.as_ref().expect("healthy"), b.as_ref().expect("healthy"));
        assert_eq!(a, b, "supervised cells diverged across pool shapes");
    }
    assert_eq!(serial.events, pooled.events);
    assert_eq!(serial.counters, pooled.counters);
    assert_eq!(serial.counters.quarantined, 0);
    assert!(!serial.degraded && !pooled.degraded);
}
