//! Cross-model consistency: the closed-form analytical model against the
//! transient circuit simulator, built from the same technology
//! parameters.

use vrl::circuit::charge_sharing::ChargeSharingModel;
use vrl::circuit::model::AnalyticalModel;
use vrl::circuit::tech::{BankGeometry, Technology};
use vrl::circuit::validation::{compare_equalization, measure_presensing};
use vrl::spice::circuits::{charge_sharing_array, sense_restore_circuit, SenseTiming};
use vrl::spice::TransientSpec;

#[test]
fn equalization_model_tracks_transient_within_60mv() {
    let cmp = compare_equalization(&Technology::n90(), 2e-9, 80).expect("simulates");
    assert!(
        cmp.two_phase_rms() < 0.06,
        "rms = {} V",
        cmp.two_phase_rms()
    );
    assert!(cmp.two_phase_rms() < cmp.single_cell_rms());
}

#[test]
fn charge_sharing_final_swing_matches_divider() {
    // The transient final bitline level must match the analytical
    // capacitive-divider limit for a solo cell.
    let tech = Technology::n90();
    let geometry = BankGeometry::operational_segment();
    let params = tech.to_spice_params(geometry);
    let (ckt, nodes) = charge_sharing_array(&params, &[true], 1e-12);
    let res = ckt
        .run_transient(TransientSpec::new(5e-12, 30e-9))
        .expect("runs");
    let v_final = res.final_voltage(nodes.bitlines[0]);

    let model = ChargeSharingModel::new(&tech, geometry);
    let expected = tech.veq() + model.divider_gain() * (tech.vdd - tech.veq());
    assert!(
        (v_final - expected).abs() < 0.03,
        "transient {v_final} vs analytical {expected}"
    );
}

#[test]
fn presensing_model_tracks_transient_within_table1_band() {
    // Table 1's claim: our model within 0–12.5% of the reference.
    let tech = Technology::n90();
    for geometry in BankGeometry::table1_configs() {
        let window = if geometry.cols >= 128 { 17 } else { 9 };
        let row = measure_presensing(&tech, geometry, window).expect("simulates");
        let err = (row.our_cycles as f64 - row.spice_cycles as f64).abs() / row.spice_cycles as f64;
        assert!(
            err <= 0.15,
            "{}: ours {} vs spice {}",
            geometry,
            row.our_cycles,
            row.spice_cycles
        );
        // And the analytical model is always orders of magnitude faster.
        assert!(row.our_seconds * 100.0 < row.spice_seconds);
    }
}

#[test]
fn restore_tail_is_slow_in_both_models() {
    // Observation 1 must hold in the transient simulator too: restoring
    // the last few percent of cell charge takes a disproportionate time.
    let tech = Technology::n90();
    let params = tech.to_spice_params(BankGeometry::operational_segment());
    let (ckt, nodes) = sense_restore_circuit(&params, 0.55, SenseTiming::default());
    let res = ckt
        .run_transient(TransientSpec::new(10e-12, 60e-9))
        .expect("runs");
    let wf = res.waveform(nodes.cell);
    let v_end = wf.last_value();
    let cross = |frac: f64| {
        wf.first_crossing(
            frac * v_end,
            vrl::spice::waveform::CrossingDirection::Rising,
        )
        .expect("reaches the level")
    };
    let t80 = cross(0.80);
    let t95 = cross(0.95);
    let t99 = cross(0.99);
    assert!(
        t99 - t95 > 0.3 * (t95 - t80),
        "tail too fast: {t80:e} {t95:e} {t99:e}"
    );

    // The analytical model agrees qualitatively.
    let model = AnalyticalModel::new(tech);
    let m95 = model.time_fraction_to_charge_fraction(0.95);
    let m99 = model.time_fraction_to_charge_fraction(0.995);
    assert!(m99 - m95 > 0.05);
}

#[test]
fn opposite_neighbors_hurt_margin_in_both_models() {
    let tech = Technology::n90();
    let geometry = BankGeometry::operational_segment();
    let params = tech.to_spice_params(geometry);

    // Transient: victim with same-data vs opposite-data neighbors.
    let run = |pattern: &[bool]| {
        let (ckt, nodes) = charge_sharing_array(&params, pattern, 1e-12);
        let res = ckt
            .run_transient(TransientSpec::new(5e-12, 30e-9))
            .expect("runs");
        res.final_voltage(nodes.bitlines[1]) - tech.veq()
    };
    let same = run(&[true, true, true]);
    let opposite = run(&[false, true, false]);
    assert!(opposite < same, "transient: {opposite} vs {same}");

    // Analytical: the coupling solve shows the same ordering.
    let model = AnalyticalModel::new(tech);
    let v_same = model.coupling().vsense(&[true, true, true], &[1.0; 3])[1];
    let v_opp = model.coupling().vsense(&[false, true, false], &[1.0; 3])[1];
    assert!(v_opp < v_same, "analytical: {v_opp} vs {v_same}");
}
