//! Property-based tests on the core invariants, spanning crates.

use proptest::prelude::*;

use vrl::circuit::model::AnalyticalModel;
use vrl::circuit::tech::Technology;
use vrl::circuit::trfc::RefreshKind;
use vrl::core::mprsf::{Mprsf, MprsfCalculator};
use vrl::core::plan::RefreshPlan;
use vrl::retention::binning::{BinningTable, RefreshBin};
use vrl::retention::leakage::LeakageModel;
use vrl::retention::profile::BankProfile;
use vrl::trace::gen::{AccessPattern, Workload, WorkloadSpec};

fn model() -> AnalyticalModel {
    AnalyticalModel::new(Technology::n90())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Binning never assigns a period longer than the row's retention.
    #[test]
    fn binning_is_always_safe(retentions in prop::collection::vec(64.0f64..5000.0, 1..64)) {
        let profile = BankProfile::from_rows(retentions.clone(), 32);
        let bins = BinningTable::from_profile(&profile);
        for (i, r) in retentions.iter().enumerate() {
            prop_assert!(bins.bin_of(i).period_ms() <= *r);
        }
    }

    /// The refresh transfer function is monotone and contractive: more
    /// starting charge in, more (but bounded) charge out.
    #[test]
    fn refresh_transfer_is_monotone(a in 0.5f64..0.95, b in 0.5f64..0.95) {
        let m = model();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for kind in [RefreshKind::Full, RefreshKind::Partial] {
            let out_lo = m.fraction_after_refresh(kind, lo);
            let out_hi = m.fraction_after_refresh(kind, hi);
            prop_assert!(out_hi + 1e-9 >= out_lo);
            prop_assert!(out_hi <= 1.0);
            // A refresh can *net remove* charge from a nearly-full cell
            // (charge sharing drains into the bitline and a short restore
            // window does not recover it), but it can never do worse than
            // the post-sharing level.
            let vdd = m.technology().vdd;
            let share_floor = m.post_share_voltage(lo * vdd) / vdd;
            prop_assert!(out_lo + 1e-9 >= share_floor, "refresh below the sharing floor");
        }
    }

    /// Leakage composes: leaking t1 then t2 equals leaking t1+t2.
    #[test]
    fn leakage_composes(
        start in 0.6f64..0.95,
        t1 in 1.0f64..200.0,
        t2 in 1.0f64..200.0,
        retention in 100.0f64..5000.0,
    ) {
        let l = LeakageModel::new(0.95, 0.6);
        let split = l.charge_after(l.charge_after(start, t1, retention), t2, retention);
        let joint = l.charge_after(start, t1 + t2, retention);
        prop_assert!((split - joint).abs() < 1e-12);
    }

    /// MPRSF is monotone in retention for a fixed period.
    #[test]
    fn mprsf_monotone_in_retention(base in 256.0f64..4000.0, delta in 1.0f64..4000.0) {
        let calc = MprsfCalculator::new(&model(), 0.0);
        let as_num = |m: Mprsf| match m {
            Mprsf::Finite(v) => v as u64,
            Mprsf::Unbounded => u64::MAX,
        };
        let weak = as_num(calc.mprsf(base, 256.0));
        let strong = as_num(calc.mprsf(base + delta, 256.0));
        prop_assert!(strong >= weak, "{strong} < {weak} at base {base} + {delta}");
    }

    /// Plans built from arbitrary profiles amortize between τ_partial and
    /// τ_full and have one MPRSF per row.
    #[test]
    fn plans_are_well_formed(retentions in prop::collection::vec(64.0f64..20_000.0, 4..48)) {
        let profile = BankProfile::from_rows(retentions, 32);
        let plan = RefreshPlan::build(&model(), &profile, 2, 0.0);
        prop_assert_eq!(plan.mprsf().len(), profile.row_count());
        prop_assert!(plan.mprsf().iter().all(|&m| m <= 3));
        let mean = plan.mean_refresh_cycles(19, 11);
        prop_assert!((11.0..=19.0).contains(&mean));
    }

    /// Generated traces are time-sorted, in-range, and deterministic.
    #[test]
    fn traces_are_well_formed(
        footprint in 0.05f64..1.0,
        zipf in 0.0f64..1.5,
        intensity in 0.5f64..8.0,
        seed in 0u64..1000,
    ) {
        let spec = WorkloadSpec {
            name: "prop".into(),
            footprint,
            pattern: AccessPattern::Zipf(zipf),
            read_fraction: 0.7,
            accesses_per_us: intensity,
        };
        let gen = |s| Workload::new(spec.clone(), 1024, s)
            .records(2.0)
            .collect::<Vec<_>>();
        let trace = gen(seed);
        let mut prev = 0;
        for r in &trace {
            prop_assert!(r.cycle >= prev);
            prev = r.cycle;
            prop_assert!(r.row < 1024);
        }
        prop_assert_eq!(trace, gen(seed));
    }

    /// The leakage/refresh loop for a bin-safe row never dips below the
    /// threshold before the first refresh.
    #[test]
    fn first_period_is_always_safe(retention in 64.0f64..50_000.0) {
        let m = model();
        let bin = RefreshBin::for_retention(retention);
        let leakage = LeakageModel::new(m.full_charge_fraction(), m.sense_threshold());
        let q = leakage.charge_after(m.full_charge_fraction(), bin.period_ms(), retention);
        prop_assert!(q >= m.sense_threshold() - 1e-9);
    }
}
