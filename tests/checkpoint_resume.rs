//! Crash-consistency contract: a run killed at an arbitrary checkpoint
//! and resumed from its snapshot file must be bit-identical to a run
//! that never paused — on every front end (single-bank simulator,
//! FR-FCFS controller, multi-bank scheduler), including the recorded
//! event stream of traced runs. Corrupt, truncated, or mismatched
//! snapshots must surface as typed errors, never as garbage state.

use std::path::PathBuf;

use vrl_dram::checkpoint::{CheckpointConfig, CheckpointOutcome, FrontEndKind, ResumedStats};
use vrl_dram::experiment::{Experiment, ExperimentConfig, PolicyKind};
use vrl_dram::Error;

fn experiment() -> Experiment {
    Experiment::new(ExperimentConfig {
        rows: 256,
        duration_ms: 64.0,
        ..Default::default()
    })
}

/// A per-test scratch file under the target-adjacent temp dir, removed
/// on drop so reruns start clean.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let mut path = std::env::temp_dir();
        path.push(format!("vrl-ckpt-{}-{name}.snap", std::process::id()));
        let _ = std::fs::remove_file(&path);
        Scratch(path)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Kill cycles spread across the 64 M-cycle horizon: early, prime-odd
/// mid-run, and late.
const KILL_CADENCES: [u64; 3] = [1_000_000, 7_777_777, 41_000_000];

#[test]
fn sim_resume_is_bit_identical_at_arbitrary_kill_cycles() {
    let exp = experiment();
    let reference = exp
        .run_policy(PolicyKind::VrlAccess, "swaptions")
        .expect("reference run");
    for (i, cadence) in KILL_CADENCES.into_iter().enumerate() {
        let scratch = Scratch::new(&format!("sim-{i}"));
        let ckpt = CheckpointConfig::new(&scratch.0, cadence).with_halt_after(1);
        let halted = exp
            .run_policy_checkpointed(PolicyKind::VrlAccess, "swaptions", &ckpt)
            .expect("checkpointed run");
        assert_eq!(
            halted,
            CheckpointOutcome::Halted { checkpoints: 1 },
            "cadence {cadence} must halt mid-run"
        );
        let report = vrl_dram::checkpoint::resume(&scratch.0, None).expect("resume");
        assert_eq!(report.front_end, FrontEndKind::Sim);
        assert_eq!(report.benchmark, "swaptions");
        assert_eq!(report.policy, PolicyKind::VrlAccess);
        match report.outcome {
            CheckpointOutcome::Completed(ResumedStats::Sim(stats)) => {
                assert_eq!(stats, reference, "kill at cycle {cadence} diverged");
            }
            other => panic!("expected completed sim stats, got {other:?}"),
        }
    }
}

#[test]
fn frfcfs_resume_is_bit_identical_at_arbitrary_kill_cycles() {
    let exp = experiment();
    let queue_depth = exp.sched_config(4).expect("sched config").queue_depth;
    let reference = exp
        .run_frfcfs(PolicyKind::Vrl, "ferret", queue_depth)
        .expect("reference run");
    for (i, cadence) in KILL_CADENCES.into_iter().enumerate() {
        let scratch = Scratch::new(&format!("frfcfs-{i}"));
        let ckpt = CheckpointConfig::new(&scratch.0, cadence).with_halt_after(1);
        let halted = exp
            .run_frfcfs_checkpointed(PolicyKind::Vrl, "ferret", queue_depth, &ckpt)
            .expect("checkpointed run");
        assert_eq!(halted, CheckpointOutcome::Halted { checkpoints: 1 });
        let report = vrl_dram::checkpoint::resume(&scratch.0, None).expect("resume");
        assert_eq!(report.front_end, FrontEndKind::FrFcfs);
        match report.outcome {
            CheckpointOutcome::Completed(ResumedStats::FrFcfs(stats)) => {
                assert_eq!(stats, reference, "kill at cycle {cadence} diverged");
            }
            other => panic!("expected completed controller stats, got {other:?}"),
        }
    }
}

#[test]
fn sched_resume_is_bit_identical_at_arbitrary_kill_cycles() {
    let exp = experiment();
    let sched = exp.sched_config(4).expect("sched config");
    let reference = exp
        .run_scheduled(PolicyKind::VrlAccess, "bgsave", sched)
        .expect("reference run");
    for (i, cadence) in KILL_CADENCES.into_iter().enumerate() {
        let scratch = Scratch::new(&format!("sched-{i}"));
        let ckpt = CheckpointConfig::new(&scratch.0, cadence).with_halt_after(1);
        let halted = exp
            .run_scheduled_checkpointed(PolicyKind::VrlAccess, "bgsave", sched, &ckpt)
            .expect("checkpointed run");
        assert_eq!(halted, CheckpointOutcome::Halted { checkpoints: 1 });
        let report = vrl_dram::checkpoint::resume(&scratch.0, None).expect("resume");
        assert_eq!(report.front_end, FrontEndKind::Sched);
        match report.outcome {
            CheckpointOutcome::Completed(ResumedStats::Sched(stats)) => {
                assert_eq!(stats, reference, "kill at cycle {cadence} diverged");
            }
            other => panic!("expected completed scheduler stats, got {other:?}"),
        }
    }
}

#[test]
fn dimm_sched_resume_is_bit_identical_at_arbitrary_kill_cycles() {
    // The full-DIMM geometry exercises the multi-channel lane cursors,
    // per-rank bus state, and the struct-of-arrays bank state in the
    // snapshot path.
    let exp = experiment();
    let sched = exp.dimm_config(2, 2, 4).expect("dimm config");
    let reference = exp
        .run_scheduled(PolicyKind::VrlAccess, "bgsave", sched)
        .expect("reference run");
    for (i, cadence) in KILL_CADENCES.into_iter().enumerate() {
        let scratch = Scratch::new(&format!("dimm-{i}"));
        let ckpt = CheckpointConfig::new(&scratch.0, cadence).with_halt_after(1);
        let halted = exp
            .run_scheduled_checkpointed(PolicyKind::VrlAccess, "bgsave", sched, &ckpt)
            .expect("checkpointed run");
        assert_eq!(halted, CheckpointOutcome::Halted { checkpoints: 1 });
        let report = vrl_dram::checkpoint::resume(&scratch.0, None).expect("resume");
        assert_eq!(report.front_end, FrontEndKind::Sched);
        match report.outcome {
            CheckpointOutcome::Completed(ResumedStats::Sched(stats)) => {
                assert_eq!(stats, reference, "DIMM kill at cycle {cadence} diverged");
            }
            other => panic!("expected completed scheduler stats, got {other:?}"),
        }
    }
}

#[test]
fn resume_survives_multiple_kills_in_one_run() {
    // Kill at the first checkpoint, resume with checkpointing still on,
    // kill again at the next, and resume to completion — the final
    // stats must still match the uninterrupted run.
    let exp = experiment();
    let sched = exp.sched_config(4).expect("sched config");
    let reference = exp
        .run_scheduled(PolicyKind::Vrl, "swaptions", sched)
        .expect("reference run");
    let scratch = Scratch::new("multi-kill");
    let ckpt = CheckpointConfig::new(&scratch.0, 9_000_000).with_halt_after(1);
    let halted = exp
        .run_scheduled_checkpointed(PolicyKind::Vrl, "swaptions", sched, &ckpt)
        .expect("first leg");
    assert_eq!(halted, CheckpointOutcome::Halted { checkpoints: 1 });
    let report = vrl_dram::checkpoint::resume(&scratch.0, Some(&ckpt)).expect("second leg");
    assert!(
        matches!(report.outcome, CheckpointOutcome::Halted { checkpoints: 1 }),
        "continued checkpointing must halt again: {:?}",
        report.outcome
    );
    let report = vrl_dram::checkpoint::resume(&scratch.0, None).expect("final leg");
    match report.outcome {
        CheckpointOutcome::Completed(ResumedStats::Sched(stats)) => {
            assert_eq!(stats, reference);
        }
        other => panic!("expected completed scheduler stats, got {other:?}"),
    }
}

#[test]
fn traced_resume_reproduces_the_identical_event_stream() {
    let exp = experiment();
    let sched = exp.sched_config(4).expect("sched config");
    let (ref_stats, ref_stream) = exp
        .run_scheduled_traced(PolicyKind::VrlAccess, "ferret", sched)
        .expect("reference traced run");
    let scratch = Scratch::new("traced");
    let ckpt = CheckpointConfig::new(&scratch.0, 13_000_000).with_halt_after(1);
    let halted = exp
        .run_scheduled_traced_checkpointed(PolicyKind::VrlAccess, "ferret", sched, &ckpt)
        .expect("checkpointed traced run");
    assert!(matches!(
        halted,
        CheckpointOutcome::Halted { checkpoints: 1 }
    ));
    let report = vrl_dram::checkpoint::resume(&scratch.0, None).expect("resume");
    let stream = report.events.expect("traced snapshot resumes with events");
    match report.outcome {
        CheckpointOutcome::Completed(ResumedStats::Sched(stats)) => {
            assert_eq!(stats, ref_stats);
        }
        other => panic!("expected completed scheduler stats, got {other:?}"),
    }
    assert_eq!(stream.events, ref_stream.events, "event streams diverged");
    assert_eq!(stream.dropped, ref_stream.dropped);
    assert_eq!(stream.label, ref_stream.label);
    assert_eq!(stream.policy, ref_stream.policy);
}

#[test]
fn corrupt_snapshots_are_typed_errors() {
    let exp = experiment();
    let scratch = Scratch::new("corrupt");
    let ckpt = CheckpointConfig::new(&scratch.0, 5_000_000).with_halt_after(1);
    exp.run_policy_checkpointed(PolicyKind::Vrl, "swaptions", &ckpt)
        .expect("checkpointed run");
    let good = std::fs::read(&scratch.0).expect("snapshot bytes");

    // A flipped payload byte fails the checksum.
    let mut flipped = good.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0xFF;
    std::fs::write(&scratch.0, &flipped).expect("write corrupt");
    match vrl_dram::checkpoint::resume(&scratch.0, None) {
        Err(Error::Snapshot(vrl_snap::SnapError::ChecksumMismatch { .. })) => {}
        other => panic!("expected checksum mismatch, got {other:?}"),
    }

    // A truncated file cannot parse its envelope.
    std::fs::write(&scratch.0, &good[..good.len() / 3]).expect("write truncated");
    assert!(
        matches!(
            vrl_dram::checkpoint::resume(&scratch.0, None),
            Err(Error::Snapshot(_))
        ),
        "truncated snapshot must be a typed snapshot error"
    );

    // A missing file is a typed I/O error, not a panic.
    std::fs::remove_file(&scratch.0).expect("remove");
    assert!(matches!(
        vrl_dram::checkpoint::resume(&scratch.0, None),
        Err(Error::Snapshot(vrl_snap::SnapError::Io { .. }))
    ));
}

#[test]
fn zero_cadence_is_rejected() {
    let exp = experiment();
    let scratch = Scratch::new("zero");
    let ckpt = CheckpointConfig::new(&scratch.0, 0);
    assert!(matches!(
        exp.run_policy_checkpointed(PolicyKind::Vrl, "swaptions", &ckpt),
        Err(Error::Snapshot(vrl_snap::SnapError::Malformed { .. }))
    ));
}

#[test]
fn manifested_matrix_matches_direct_runs_and_resumes() {
    let exp = Experiment::new(ExperimentConfig {
        rows: 256,
        duration_ms: 32.0,
        ..Default::default()
    });
    let policies = [PolicyKind::Raidr, PolicyKind::Vrl];
    let pool = vrl_exec::ExecConfig::new(2);
    let scratch = Scratch::new("manifest");

    let direct = exp
        .run_matrix_with(&pool, &policies)
        .expect("direct matrix")
        .0;
    let fresh = exp
        .run_matrix_manifested(&pool, &policies, &scratch.0)
        .expect("fresh manifested matrix");
    assert_eq!(fresh, direct, "manifested sweep diverged from direct run");

    // A second pass finds every cell already persisted and re-simulates
    // nothing — it must return the identical matrix.
    let reloaded = exp
        .run_matrix_manifested(&pool, &policies, &scratch.0)
        .expect("reloaded manifested matrix");
    assert_eq!(reloaded, direct);

    // A manifest from a different experiment shape is refused, not
    // silently mixed in.
    let other = Experiment::new(ExperimentConfig {
        rows: 512,
        duration_ms: 32.0,
        ..Default::default()
    });
    assert!(matches!(
        other.run_matrix_manifested(&pool, &policies, &scratch.0),
        Err(Error::ResumeMismatch { .. })
    ));
    assert!(matches!(
        exp.run_matrix_manifested(&pool, &[PolicyKind::Raidr], &scratch.0),
        Err(Error::ResumeMismatch { .. })
    ));
}
