//! Fault-injection end-to-end tests: the unguarded policies lose data
//! under profile staleness, the runtime guard does not — and its
//! degradation ladder is monotone.

use proptest::prelude::*;

use vrl::core::experiment::{Experiment, ExperimentConfig, PolicyKind};
use vrl::dram::fault::FaultConfig;
use vrl::dram::guard::{Guard, GuardConfig};
use vrl::dram::integrity::LinearPhysics;
use vrl::dram::policy::{AdaptivePolicy, DegradeAction, RefreshPolicy, Vrl};
use vrl::dram::sim::{SimConfig, Simulator};
use vrl::dram::TimingParams;
use vrl::retention::binning::BinningTable;
use vrl::retention::profile::BankProfile;

fn experiment() -> Experiment {
    Experiment::new(ExperimentConfig {
        rows: 256,
        duration_ms: 1024.0,
        ..Default::default()
    })
}

/// Without the guard, the default fault scenario (profiler optimism +
/// VRT) makes VRL silently cross the sensing threshold.
#[test]
fn unguarded_vrl_loses_data_under_default_faults() {
    let e = experiment();
    let faults = FaultConfig::default_scenario(42);
    let out = e
        .run_faulted(PolicyKind::Vrl, "ferret", &faults, None)
        .expect("known");
    assert!(out.guard.is_none());
    assert!(
        out.violations >= 1,
        "expected silent data loss, got {} violations ({:?})",
        out.violations,
        out.faults
    );
}

/// The guard turns every excursion into a corrected error: zero
/// uncorrected losses, and the refresh-busy overhead of the degraded
/// rows stays within 10% of the fault-free VRL run.
#[test]
fn guarded_vrl_is_lossless_with_bounded_overhead() {
    let e = experiment();
    let faults = FaultConfig::default_scenario(42);
    let fault_free = e.run_policy(PolicyKind::Vrl, "ferret").expect("known");
    let out = e
        .run_faulted(
            PolicyKind::Vrl,
            "ferret",
            &faults,
            Some(&GuardConfig::default()),
        )
        .expect("known");
    let guard = out.guard.expect("guard stats");
    assert_eq!(guard.uncorrected, 0, "guard lost data: {guard:?}");
    assert_eq!(out.stats.uncorrected_errors, 0);
    assert!(
        guard.corrected > 0,
        "the fault scenario should trip the guard"
    );
    let budget = fault_free.refresh_busy_cycles as f64 * 1.10;
    assert!(
        (out.stats.refresh_busy_cycles as f64) <= budget,
        "refresh-busy {} exceeds 110% of fault-free {}",
        out.stats.refresh_busy_cycles,
        fault_free.refresh_busy_cycles
    );
}

/// Deterministic ladder recovery: a recklessly-optimistic MPRSF (the
/// profiler-optimism fault in its purest form) is corrected and degraded
/// until the row is safe, after which no further errors occur.
#[test]
fn guard_degrades_a_reckless_row_until_it_is_safe() {
    let rows = 4;
    let retention = 280.0; // bin 256 ms: partials alone cross the threshold
    let timing = TimingParams::paper_default();
    let profile = BankProfile::from_rows(std::iter::repeat_n(retention, rows), 32);
    let bins = BinningTable::from_profile(&profile);
    let physics = LinearPhysics {
        full: 0.95,
        partial_gain: 0.4,
        threshold: 0.62,
    };
    let config = GuardConfig {
        margin: 0.12,
        scrub_interval_ms: 0.0,
    };
    let mut guard = Guard::new(physics, timing, vec![retention; rows], config);
    let mut sim = Simulator::new(
        SimConfig::with_rows(rows as u32),
        Vrl::new(bins, vec![3; rows]),
    );
    let stats = sim.run_guarded(std::iter::empty(), 4096.0, &mut guard);
    let gs = guard.stats();
    assert_eq!(gs.uncorrected, 0, "{gs:?}");
    // The ladder converges in exactly two corrected steps per row
    // (MPRSF 3 → 1 → 0), then the all-full schedule is safe forever.
    assert_eq!(gs.corrected, 2 * rows as u64, "{gs:?}");
    assert_eq!(gs.mprsf_demotions, 2 * rows as u64);
    assert_eq!(gs.bin_demotions, 0);
    assert_eq!(stats.uncorrected_errors, 0);
}

/// The same reckless configuration without a guard is a data-loss
/// machine — the contrast that justifies the scrub/ECC overhead.
#[test]
fn the_same_reckless_row_unguarded_keeps_losing_data() {
    let rows = 4;
    let retention = 280.0;
    let timing = TimingParams::paper_default();
    let profile = BankProfile::from_rows(std::iter::repeat_n(retention, rows), 32);
    let bins = BinningTable::from_profile(&profile);
    let physics = LinearPhysics {
        full: 0.95,
        partial_gain: 0.4,
        threshold: 0.62,
    };
    let mut checker =
        vrl::dram::integrity::IntegrityChecker::new(physics, timing, vec![retention; rows]);
    let mut sim = Simulator::new(
        SimConfig::with_rows(rows as u32),
        Vrl::new(bins, vec![3; rows]),
    );
    sim.run_observed(std::iter::empty(), 4096.0, &mut checker);
    assert!(
        checker.violations().len() > rows,
        "{:?}",
        checker.violations().len()
    );
}

/// Satellite: once the guard demotes a row, continued VRT toggling never
/// drives it below threshold again — the demoted bin covers the weak
/// state, so the error stream dries up after a bounded transient.
/// (The bound is two steps per row, not one: a bin demotion cannot recall
/// the row's already-queued refresh deadline, so one more correction can
/// land before the shorter period takes hold.)
#[test]
fn demoted_rows_stay_safe_under_continued_vrt_toggling() {
    use vrl::dram::fault::{FaultConfig, FaultInjector, VrtFault};
    let rows = 4;
    let profiled = 300.0; // bin 256 ms; weak state 0.7 × 300 = 210 ms < 256
    let timing = TimingParams::paper_default();
    let profile = BankProfile::from_rows(std::iter::repeat_n(profiled, rows), 32);
    let bins = BinningTable::from_profile(&profile);
    let faults = FaultConfig {
        seed: 3,
        vrt: Some(VrtFault {
            fraction: 1.0,
            weak_factor: 0.7,
            toggle_probability: 0.5,
            step_ms: 64.0,
        }),
        ..Default::default()
    };
    let injector = FaultInjector::new(faults, &vec![profiled; rows], timing);
    let physics = LinearPhysics {
        full: 0.95,
        partial_gain: 0.4,
        threshold: 0.62,
    };
    let config = GuardConfig {
        margin: 0.09,
        scrub_interval_ms: 0.0,
    };
    let mut guard = Guard::new(physics, timing, injector.true_retention(), config);
    // MPRSF 0 everywhere: the ladder's first step is the bin demotion.
    let mut sim = Simulator::new(
        SimConfig::with_rows(rows as u32),
        Vrl::new(bins, vec![0; rows]),
    );
    sim.set_fault_injector(injector);
    sim.run_guarded(std::iter::empty(), 8192.0, &mut guard);
    let toggles = sim.fault_injector().expect("injector").stats().vrt_toggles;
    let gs = guard.stats();
    assert!(toggles > rows as u64, "VRT must keep toggling: {toggles}");
    assert_eq!(gs.uncorrected, 0, "{gs:?}");
    assert!(gs.corrected >= 1, "weak states must trip the guard: {gs:?}");
    assert_eq!(gs.mprsf_demotions, 0);
    // The 192 ms bin covers the 210 ms weak state, so after at most two
    // corrected steps per row (one overshoot from the queued deadline) a
    // demoted row never crosses the threshold again — over ~32 further
    // periods of continued toggling the error count stays frozen.
    assert_eq!(gs.corrected, gs.bin_demotions, "{gs:?}");
    assert!(gs.bin_demotions <= 2 * rows as u64, "{gs:?}");
    assert_eq!(gs.at_floor_errors, 0);
}

/// MPRSF counters saturate at `2^nbits − 1` and the scheduler honors the
/// cap: a saturated row issues exactly `cap` partials between fulls.
#[test]
fn saturated_mprsf_caps_the_partial_run_length() {
    use vrl::core::mprsf::Mprsf;
    let nbits = 2;
    let cap = (1u8 << nbits) - 1;
    assert_eq!(Mprsf::Finite(200).saturate(nbits), cap);
    assert_eq!(Mprsf::Unbounded.saturate(nbits), cap);

    let profile = BankProfile::from_rows(std::iter::repeat_n(1500.0, 1), 32);
    let bins = BinningTable::from_profile(&profile);
    let mut vrl = Vrl::new(bins, vec![cap]);
    let mut partial_run = 0u8;
    let mut longest = 0u8;
    for _ in 0..32 {
        match vrl.refresh_kind(0) {
            vrl::dram::timing::RefreshLatency::Partial => partial_run += 1,
            vrl::dram::timing::RefreshLatency::Full => {
                longest = longest.max(partial_run);
                partial_run = 0;
            }
        }
    }
    assert_eq!(longest, cap);
}

/// Satellite: every degradation-ladder step surfaces as a `GuardDegrade`
/// event on the observability stream, and the recorded per-row sequence
/// is monotone (severity ranks never decrease) — the event-level twin of
/// the state-level proptest below.
#[test]
fn guard_degrade_events_trace_a_monotone_ladder() {
    use std::collections::BTreeMap;
    use vrl::obs::{EventKind, Recorder};

    let rows = 4;
    let retention = 280.0;
    let timing = TimingParams::paper_default();
    let profile = BankProfile::from_rows(std::iter::repeat_n(retention, rows), 32);
    let bins = BinningTable::from_profile(&profile);
    let physics = LinearPhysics {
        full: 0.95,
        partial_gain: 0.4,
        threshold: 0.62,
    };
    let config = GuardConfig {
        margin: 0.12,
        scrub_interval_ms: 0.0,
    };
    let mut guard = Guard::new(physics, timing, vec![retention; rows], config);
    let mut sim = Simulator::new(
        SimConfig::with_rows(rows as u32),
        Vrl::new(bins.clone(), vec![3; rows]),
    );
    let mut recorder = Recorder::single_bank("reckless", "vrl");
    let stats = sim.run_guarded_observed(std::iter::empty(), 4096.0, &mut guard, &mut recorder);
    let gs = guard.stats();
    let stream = recorder.finish();

    // Recording must not perturb the guarded run.
    let mut plain_guard = Guard::new(physics, timing, vec![retention; rows], config);
    let mut plain_sim = Simulator::new(
        SimConfig::with_rows(rows as u32),
        Vrl::new(bins, vec![3; rows]),
    );
    let plain_stats = plain_sim.run_guarded(std::iter::empty(), 4096.0, &mut plain_guard);
    assert_eq!(stats, plain_stats);

    // One GuardDegrade event per applied ladder step, in cycle order.
    let mut per_row: BTreeMap<u32, Vec<(u64, u64)>> = BTreeMap::new();
    for ev in &stream.events {
        if let EventKind::GuardDegrade(step) = ev.kind {
            per_row
                .entry(ev.row)
                .or_default()
                .push((ev.cycle, step.severity_rank()));
        }
    }
    let total: usize = per_row.values().map(Vec::len).sum();
    assert_eq!(
        total as u64,
        gs.mprsf_demotions + gs.bin_demotions,
        "every ladder step must be traced: {gs:?}"
    );
    assert_eq!(per_row.len(), rows, "every row degrades in this scenario");
    for (row, steps) in &per_row {
        assert_eq!(steps.len(), 2, "row {row}: MPRSF 3 -> 1 -> 0");
        for pair in steps.windows(2) {
            assert!(
                pair[0].0 <= pair[1].0,
                "row {row}: events out of cycle order"
            );
            assert!(
                pair[0].1 <= pair[1].1,
                "row {row}: ladder went backwards: {steps:?}"
            );
        }
    }
}

fn ladder_state(policy: &Vrl, row: u32) -> (f64, u8) {
    (policy.period_ms(row), policy.mprsf(row))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The degradation ladder is monotone: across any sequence of
    /// degrade calls, a row never regains a longer refresh period, and
    /// at a fixed period never regains a larger MPRSF (no promotion
    /// without a full offline re-profile).
    #[test]
    fn degradation_ladder_is_monotone(
        retentions in prop::collection::vec(70.0f64..2000.0, 1..16),
        picks in prop::collection::vec(0usize..16, 1..48),
        mprsf0 in 0u8..=3u8,
    ) {
        let profile = BankProfile::from_rows(retentions.clone(), 32);
        let bins = BinningTable::from_profile(&profile);
        let n = retentions.len();
        let mut policy = Vrl::new(bins, vec![mprsf0; n]);
        for pick in picks {
            let row = (pick % n) as u32;
            let before = ladder_state(&policy, row);
            let action = policy.degrade(row);
            let after = ladder_state(&policy, row);
            prop_assert!(after.0 <= before.0, "period grew: {before:?} -> {after:?}");
            if (after.0 - before.0).abs() < f64::EPSILON {
                prop_assert!(after.1 <= before.1, "mprsf grew: {before:?} -> {after:?}");
            } else {
                // A re-bin only happens once MPRSF has hit 0.
                prop_assert_eq!(before.1, 0);
                prop_assert_eq!(after.1, 0);
            }
            if action == DegradeAction::AtFloor {
                prop_assert_eq!(after, before, "AtFloor must not change state");
                prop_assert!((after.0 - 64.0).abs() < f64::EPSILON);
                prop_assert_eq!(after.1, 0);
            }
            // Other rows are untouched.
            for other in 0..n as u32 {
                if other != row {
                    let _ = ladder_state(&policy, other);
                }
            }
        }
    }
}
