//! Observability-layer end-to-end tests: the `NopObserver` path is
//! bit-identical to the recorded path on every front end, and the Chrome
//! `trace_event` export round-trips through the schema validator with a
//! rich event vocabulary.

use vrl::core::experiment::{sched_metrics, Experiment, ExperimentConfig, PolicyKind};
use vrl::obs::{chrome_trace_json, merge_streams, validate_chrome_trace, EventKind, NopObserver};

fn experiment() -> Experiment {
    Experiment::new(ExperimentConfig {
        rows: 256,
        duration_ms: 256.0,
        ..Default::default()
    })
}

/// Observability off must equal observability on, bit for bit — the
/// `NopObserver` hooks are default no-ops that monomorphise away, and
/// the `Recorder` only copies values it is handed.
#[test]
fn nop_observer_is_bit_identical_to_recording() {
    let e = experiment();
    let sched = e.sched_config(4).expect("4 banks");
    for kind in [PolicyKind::Vrl, PolicyKind::VrlAccess] {
        // Single-bank front end.
        let off = e.run_policy(kind, "x264").expect("known");
        let (on, _) = e.run_policy_traced(kind, "x264").expect("known");
        assert_eq!(off, on, "{}: single-bank run diverged", kind.name());

        // Scheduler front end, explicit NopObserver vs Recorder.
        let trace = {
            let spec = vrl::trace::WorkloadSpec::parsec("x264").expect("known");
            vrl::trace::Workload::new(spec, 256, e.config().seed)
        };
        let off = e
            .run_scheduled_with(kind, sched, trace.records(256.0), &mut NopObserver)
            .expect("runs");
        let (on, stream) = e.run_scheduled_traced(kind, "x264", sched).expect("known");
        assert_eq!(off, on, "{}: scheduled run diverged", kind.name());
        assert!(!stream.events.is_empty(), "recording must capture events");
    }
}

/// The exported Chrome trace for a covering workload passes schema
/// validation and carries at least four distinct event types — the
/// acceptance bar for `vrl trace bgsave --policy vrl-access`.
#[test]
fn bgsave_trace_exports_at_least_four_event_kinds() {
    let e = experiment();
    let sched = e.sched_config(4).expect("4 banks");
    let (stats, stream) = e
        .run_scheduled_traced(PolicyKind::VrlAccess, "bgsave", sched)
        .expect("known");
    let json = chrome_trace_json(
        &stream.events,
        &stream.label,
        &stream.policy,
        stream.dropped,
    );
    let summary = validate_chrome_trace(&json).expect("exporter output must validate");
    assert_eq!(summary.events, stream.events.len());
    assert_eq!(summary.dropped, stream.dropped);
    assert!(
        summary.kinds.len() >= 4,
        "expected >= 4 event types, got {:?}",
        summary.kinds
    );
    for kind in ["Activate", "RefreshFull", "RefreshPartial"] {
        assert!(
            summary.kinds.contains(kind),
            "missing {kind}: {:?}",
            summary.kinds
        );
    }
    assert_eq!(summary.banks.len() as u32, sched.banks());

    // The metrics snapshot mirrors the same run.
    let snap = sched_metrics(&stats);
    assert_eq!(snap.counter("sim.accesses"), stats.sim.accesses);
    let metrics_json = snap.to_json();
    assert!(metrics_json.contains("\"sim.accesses\""));
}

/// Merged multi-run streams stay valid Chrome traces: the stable
/// `(cycle, bank, seq)` merge key keeps every bank track in
/// non-decreasing `ts` order, which the validator enforces.
#[test]
fn merged_streams_export_to_a_valid_trace() {
    let e = Experiment::new(ExperimentConfig {
        rows: 128,
        duration_ms: 64.0,
        ..Default::default()
    });
    let sched = e.sched_config(4).expect("4 banks");
    let streams: Vec<_> = ["ferret", "x264"]
        .iter()
        .map(|b| {
            e.run_scheduled_traced(PolicyKind::Vrl, b, sched)
                .expect("known")
                .1
        })
        .collect();
    let merged = merge_streams(&streams);
    assert!(merged.len() > streams.iter().map(|s| s.events.len()).max().unwrap());
    let json = chrome_trace_json(&merged, "merged", "vrl", 0);
    let summary = validate_chrome_trace(&json).expect("merged streams must stay valid");
    assert_eq!(summary.events, merged.len());
    assert!(merged.iter().any(|ev| ev.kind == EventKind::Activate));
}
